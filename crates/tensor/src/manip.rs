//! Shape manipulation: reshape, transpose, permute, concat, slice, stack,
//! padding, and axis selection. All operations materialize a new tensor.

use crate::shape::{normalize_axis, Shape};
use crate::tensor::Tensor;

impl Tensor {
    /// Reinterprets the buffer with a new shape of equal element count.
    ///
    /// One axis may be `usize::MAX` to mean "infer this dimension".
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let mut dims = shape.to_vec();
        if let Some(pos) = dims.iter().position(|&d| d == usize::MAX) {
            let known: usize = dims.iter().filter(|&&d| d != usize::MAX).product();
            assert!(
                known > 0 && self.numel() % known == 0,
                "cannot infer axis: numel {} not divisible by {:?}",
                self.numel(),
                shape
            );
            dims[pos] = self.numel() / known;
        }
        assert_eq!(
            Shape::numel(&dims),
            self.numel(),
            "reshape {:?} -> {:?} changes element count",
            self.shape,
            shape
        );
        Tensor { shape: dims, data: self.data.clone() }
    }

    /// 2-D transpose.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose expects rank 2, got {:?}", self.shape);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// General axis permutation (`perm` is a permutation of `0..rank`).
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        assert_eq!(perm.len(), self.rank(), "permute rank mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let out_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let in_strides = Shape::strides(&self.shape);
        let perm_strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
        let numel = self.numel();
        let mut out = Vec::with_capacity(numel);
        let mut idx = vec![0usize; out_shape.len()];
        let mut off = 0usize;
        for _ in 0..numel {
            out.push(self.data[off]);
            for ax in (0..out_shape.len()).rev() {
                idx[ax] += 1;
                off += perm_strides[ax];
                if idx[ax] < out_shape[ax] {
                    break;
                }
                off -= perm_strides[ax] * idx[ax];
                idx[ax] = 0;
            }
        }
        Tensor::from_vec(out, &out_shape)
    }

    /// Batched transpose of the last two axes of a rank-3 tensor.
    pub fn transpose_batched(&self) -> Tensor {
        assert_eq!(self.rank(), 3, "transpose_batched expects rank 3");
        self.permute(&[0, 2, 1])
    }

    /// Concatenates tensors along `axis`. All other axes must agree.
    pub fn concat(parts: &[&Tensor], axis: isize) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let rank = parts[0].rank();
        let ax = normalize_axis(axis, rank);
        let mut out_shape = parts[0].shape.clone();
        let mut axis_total = 0usize;
        for p in parts {
            assert_eq!(p.rank(), rank, "concat rank mismatch");
            for d in 0..rank {
                if d != ax {
                    assert_eq!(
                        p.shape[d], out_shape[d],
                        "concat shape mismatch on axis {d}: {:?} vs {:?}",
                        p.shape, out_shape
                    );
                }
            }
            axis_total += p.shape[ax];
        }
        out_shape[ax] = axis_total;
        let outer: usize = out_shape[..ax].iter().product();
        let inner: usize = out_shape[ax + 1..].iter().product();
        let mut data = Vec::with_capacity(Shape::numel(&out_shape));
        for o in 0..outer {
            for p in parts {
                let len = p.shape[ax] * inner;
                data.extend_from_slice(&p.data[o * len..(o + 1) * len]);
            }
        }
        Tensor::from_vec(data, &out_shape)
    }

    /// Stacks same-shaped tensors along a new leading axis.
    pub fn stack(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack of zero tensors");
        let mut shape = vec![parts.len()];
        shape.extend_from_slice(&parts[0].shape);
        let mut data = Vec::with_capacity(Shape::numel(&shape));
        for p in parts {
            assert_eq!(p.shape, parts[0].shape, "stack requires identical shapes");
            data.extend_from_slice(&p.data);
        }
        Tensor::from_vec(data, &shape)
    }

    /// Copies the half-open range `[start, stop)` along `axis`.
    pub fn slice_axis(&self, axis: isize, start: usize, stop: usize) -> Tensor {
        let ax = normalize_axis(axis, self.rank());
        assert!(
            start <= stop && stop <= self.shape[ax],
            "slice [{start},{stop}) out of bounds for axis {ax} with size {}",
            self.shape[ax]
        );
        let outer: usize = self.shape[..ax].iter().product();
        let inner: usize = self.shape[ax + 1..].iter().product();
        let axis_len = self.shape[ax];
        let mut out_shape = self.shape.clone();
        out_shape[ax] = stop - start;
        let mut data = Vec::with_capacity(Shape::numel(&out_shape));
        for o in 0..outer {
            let base = (o * axis_len + start) * inner;
            data.extend_from_slice(&self.data[base..base + (stop - start) * inner]);
        }
        Tensor::from_vec(data, &out_shape)
    }

    /// Selects a single index along `axis`, removing that axis.
    pub fn index_axis(&self, axis: isize, index: usize) -> Tensor {
        let ax = normalize_axis(axis, self.rank());
        let mut t = self.slice_axis(axis, index, index + 1);
        t.shape.remove(ax);
        t
    }

    /// Adds a new axis of length 1 at `axis`.
    pub fn unsqueeze(&self, axis: isize) -> Tensor {
        let rank = self.rank();
        let ax = if axis < 0 { (axis + rank as isize + 1) as usize } else { axis as usize };
        assert!(ax <= rank, "unsqueeze axis {axis} out of range for rank {rank}");
        let mut shape = self.shape.clone();
        shape.insert(ax, 1);
        Tensor { shape, data: self.data.clone() }
    }

    /// Removes an axis of length 1 at `axis`.
    pub fn squeeze(&self, axis: isize) -> Tensor {
        let ax = normalize_axis(axis, self.rank());
        assert_eq!(self.shape[ax], 1, "squeeze axis {ax} has size {}", self.shape[ax]);
        let mut shape = self.shape.clone();
        shape.remove(ax);
        Tensor { shape, data: self.data.clone() }
    }

    /// Left-pads `axis` with `count` copies of `value` (causal padding for
    /// dilated convolutions).
    pub fn pad_axis_front(&self, axis: isize, count: usize, value: f32) -> Tensor {
        let ax = normalize_axis(axis, self.rank());
        let mut padded_shape = self.shape.clone();
        padded_shape[ax] += count;
        let outer: usize = self.shape[..ax].iter().product();
        let inner: usize = self.shape[ax + 1..].iter().product();
        let axis_len = self.shape[ax];
        let mut data = Vec::with_capacity(Shape::numel(&padded_shape));
        for o in 0..outer {
            data.extend(std::iter::repeat_n(value, count * inner));
            let base = o * axis_len * inner;
            data.extend_from_slice(&self.data[base..base + axis_len * inner]);
        }
        Tensor::from_vec(data, &padded_shape)
    }

    /// Repeats the whole tensor `n` times along a new leading axis.
    pub fn repeat_leading(&self, n: usize) -> Tensor {
        let mut shape = vec![n];
        shape.extend_from_slice(&self.shape);
        let mut data = Vec::with_capacity(self.numel() * n);
        for _ in 0..n {
            data.extend_from_slice(&self.data);
        }
        Tensor::from_vec(data, &shape)
    }

    /// Flattens to rank 1.
    pub fn flatten(&self) -> Tensor {
        Tensor { shape: vec![self.numel()], data: self.data.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t234() -> Tensor {
        Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4])
    }

    #[test]
    fn reshape_preserves_data() {
        let t = t234().reshape(&[6, 4]);
        assert_eq!(t.shape(), &[6, 4]);
        assert_eq!(t.at(&[5, 3]), 23.0);
    }

    #[test]
    fn reshape_infers_axis() {
        let t = t234().reshape(&[2, usize::MAX]);
        assert_eq!(t.shape(), &[2, 12]);
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_rejects_bad_count() {
        t234().reshape(&[5, 5]);
    }

    #[test]
    fn transpose_2d() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn double_transpose_is_identity() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        assert!(t.transpose().transpose().allclose(&t, 0.0));
    }

    #[test]
    fn permute_matches_transpose() {
        let t = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        assert!(t.permute(&[1, 0]).allclose(&t.transpose(), 0.0));
    }

    #[test]
    fn permute_3d_moves_axes() {
        let t = t234();
        let p = t.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[3, 1, 2]), t.at(&[1, 2, 3]));
    }

    #[test]
    fn transpose_batched_swaps_last_two() {
        let t = t234();
        let b = t.transpose_batched();
        assert_eq!(b.shape(), &[2, 4, 3]);
        assert_eq!(b.at(&[1, 3, 0]), t.at(&[1, 0, 3]));
    }

    #[test]
    fn concat_axis0() {
        let a = Tensor::ones(&[1, 2]);
        let b = Tensor::zeros(&[2, 2]);
        let c = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.data(), &[1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn concat_axis1() {
        let a = Tensor::from_rows(&[vec![1.0], vec![2.0]]);
        let b = Tensor::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_last_axis_of_3d() {
        let t = t234();
        let left = t.slice_axis(-1, 0, 2);
        let right = t.slice_axis(-1, 2, 4);
        assert!(Tensor::concat(&[&left, &right], -1).allclose(&t, 0.0));
    }

    #[test]
    fn stack_adds_leading_axis() {
        let a = Tensor::ones(&[2]);
        let b = Tensor::zeros(&[2]);
        let s = Tensor::stack(&[&a, &b]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn slice_axis_middle() {
        let t = t234();
        let s = t.slice_axis(1, 1, 3);
        assert_eq!(s.shape(), &[2, 2, 4]);
        assert_eq!(s.at(&[0, 0, 0]), t.at(&[0, 1, 0]));
        assert_eq!(s.at(&[1, 1, 3]), t.at(&[1, 2, 3]));
    }

    #[test]
    fn index_axis_removes_axis() {
        let t = t234();
        let s = t.index_axis(0, 1);
        assert_eq!(s.shape(), &[3, 4]);
        assert_eq!(s.at(&[2, 3]), 23.0);
    }

    #[test]
    fn unsqueeze_squeeze_roundtrip() {
        let t = Tensor::ones(&[2, 3]);
        let u = t.unsqueeze(1);
        assert_eq!(u.shape(), &[2, 1, 3]);
        assert!(u.squeeze(1).allclose(&t, 0.0));
        assert_eq!(t.unsqueeze(-1).shape(), &[2, 3, 1]);
    }

    #[test]
    fn pad_axis_front_causal() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let p = t.pad_axis_front(0, 2, 0.0);
        assert_eq!(p.data(), &[0.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn pad_axis_front_inner_axis() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let p = t.pad_axis_front(1, 1, 9.0);
        assert_eq!(p.shape(), &[2, 3]);
        assert_eq!(p.data(), &[9.0, 1.0, 2.0, 9.0, 3.0, 4.0]);
    }

    #[test]
    fn repeat_leading_copies() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let r = t.repeat_leading(3);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn flatten_to_rank1() {
        assert_eq!(t234().flatten().shape(), &[24]);
    }
}
