//! Micro-kernel dispatch: the register-tiled inner kernels of the blocked
//! GEMM engine, selected once per process by runtime CPU feature detection.
//!
//! The blocked engine in [`crate::matmul`] packs operand panels and walks
//! them with an `MR`×`NR` register tile. This module owns that tile: a
//! portable scalar 4×8 kernel (the always-correct fallback, bit-identical
//! to the pre-SIMD engine), an AVX2+FMA 6×16 kernel on `x86_64`, and a
//! NEON 4×8 kernel on `aarch64`. [`selected_kernel`] picks one at first
//! use via `is_x86_feature_detected!` and caches the choice; setting the
//! `ENHANCENET_FORCE_SCALAR` environment variable (to anything but `0` or
//! the empty string) pins dispatch to the scalar kernel for
//! reproducibility and fallback testing.
//!
//! Kernels receive *packed* strips (A in `mr`-row strips, B in `nr`-column
//! strips, both zero-padded to full tiles by the pack routines) and write
//! an `mr`×`nr` corner of the accumulated tile through a raw output
//! pointer. The pointer interface — rather than `&mut [f32]` — is what
//! lets the engine fan row blocks *and* column slabs of one output across
//! rayon without ever materializing overlapping mutable slices.
//!
//! Telemetry (recorded by the engine, not here):
//! `tensor.kernel.dispatch.{avx2,neon,scalar}` counts blocked dispatches
//! per kernel, `tensor.kernel.simd_available` counts blocked dispatches on
//! hosts whose CPU supports a vectorized kernel (whether or not one was
//! forced off), and `tensor.gemm.par_blocks` counts intra-GEMM parallel
//! fan-out ([`crate::matmul`]).

use std::sync::OnceLock;

/// One register-tiled inner kernel: the exchangeable heart of the blocked
/// GEMM engine.
///
/// Implementations are zero-sized and stateless; the engine holds one as a
/// `&'static dyn MicroKernel` chosen by [`selected_kernel`]. The virtual
/// call happens once per micro-tile (`mr × nr × kc` multiply-adds), so its
/// cost is noise.
pub trait MicroKernel: Sync {
    /// Tile height: packed A strips hold this many rows per `k` step.
    fn mr(&self) -> usize;
    /// Tile width: packed B strips hold this many columns per `k` step.
    fn nr(&self) -> usize;
    /// Short identity (`"scalar"`, `"avx2"`, `"neon"`) used in telemetry
    /// counter names and test labels.
    fn name(&self) -> &'static str;
    /// Full telemetry counter label for dispatches of this kernel.
    fn dispatch_counter(&self) -> &'static str;

    /// Computes `out[0..mr, 0..nr] += astrip · bstrip` over `kc` depth
    /// steps.
    ///
    /// `astrip` holds `kc * self.mr()` floats (`astrip[kk*mr + ii]` = row
    /// `ii`, depth `kk`); `bstrip` holds `kc * self.nr()` floats
    /// (`bstrip[kk*nr + jj]` = column `jj`, depth `kk`). Rows/columns past
    /// `mr`/`nr` are zero padding and their products are discarded.
    ///
    /// # Safety
    ///
    /// `out` must point at the tile's top-left element of a row-major
    /// matrix with row stride `row_stride`; the `mr` rows × `nr` columns
    /// reachable from it must be in bounds and writable, and no other
    /// thread may access them for the duration of the call. Callers must
    /// also uphold `mr <= self.mr()`, `nr <= self.nr()`, and the strip
    /// lengths above.
    #[allow(clippy::too_many_arguments)]
    unsafe fn run(
        &self,
        kc: usize,
        astrip: &[f32],
        bstrip: &[f32],
        out: *mut f32,
        row_stride: usize,
        mr: usize,
        nr: usize,
    );
}

/// Portable scalar 4×8 kernel: 32 accumulators the compiler keeps in
/// registers on any baseline. Bit-identical to the pre-dispatch engine —
/// same tile shape, same accumulation order — so forcing it reproduces
/// historical results exactly.
pub struct ScalarKernel;

/// The scalar tile shape (rows).
pub const SCALAR_MR: usize = 4;
/// The scalar tile shape (columns).
pub const SCALAR_NR: usize = 8;

impl MicroKernel for ScalarKernel {
    fn mr(&self) -> usize {
        SCALAR_MR
    }

    fn nr(&self) -> usize {
        SCALAR_NR
    }

    fn name(&self) -> &'static str {
        "scalar"
    }

    fn dispatch_counter(&self) -> &'static str {
        "tensor.kernel.dispatch.scalar"
    }

    unsafe fn run(
        &self,
        kc: usize,
        astrip: &[f32],
        bstrip: &[f32],
        out: *mut f32,
        row_stride: usize,
        mr: usize,
        nr: usize,
    ) {
        debug_assert!(astrip.len() >= kc * SCALAR_MR && bstrip.len() >= kc * SCALAR_NR);
        debug_assert!(mr <= SCALAR_MR && nr <= SCALAR_NR);
        let mut acc = [[0.0f32; SCALAR_NR]; SCALAR_MR];
        for kk in 0..kc {
            let arow = &astrip[kk * SCALAR_MR..kk * SCALAR_MR + SCALAR_MR];
            let brow = &bstrip[kk * SCALAR_NR..kk * SCALAR_NR + SCALAR_NR];
            for (accrow, &av) in acc.iter_mut().zip(arow) {
                for (c, &bv) in accrow.iter_mut().zip(brow) {
                    *c += av * bv;
                }
            }
        }
        for (ii, accrow) in acc.iter().enumerate().take(mr) {
            let row = out.add(ii * row_stride);
            for (jj, &c) in accrow.iter().enumerate().take(nr) {
                *row.add(jj) += c;
            }
        }
    }
}

/// AVX2+FMA 6×16 kernel: 12 `__m256` accumulators (6 rows × two 8-lane
/// vectors) plus two B vectors and one broadcast fit x86-64's 16 vector
/// registers without spills. Only constructed when `is_x86_feature_detected!`
/// confirms both `avx2` and `fma` at runtime.
#[cfg(target_arch = "x86_64")]
pub struct Avx2Kernel;

#[cfg(target_arch = "x86_64")]
impl MicroKernel for Avx2Kernel {
    fn mr(&self) -> usize {
        6
    }

    fn nr(&self) -> usize {
        16
    }

    fn name(&self) -> &'static str {
        "avx2"
    }

    fn dispatch_counter(&self) -> &'static str {
        "tensor.kernel.dispatch.avx2"
    }

    unsafe fn run(
        &self,
        kc: usize,
        astrip: &[f32],
        bstrip: &[f32],
        out: *mut f32,
        row_stride: usize,
        mr: usize,
        nr: usize,
    ) {
        avx2_tile_6x16(kc, astrip, bstrip, out, row_stride, mr, nr);
    }
}

/// The AVX2 tile body. `#[target_feature]` keeps the vector code out of
/// the portable build paths; the caller guarantees the features exist
/// (the kernel is only ever selected behind `is_x86_feature_detected!`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn avx2_tile_6x16(
    kc: usize,
    astrip: &[f32],
    bstrip: &[f32],
    out: *mut f32,
    row_stride: usize,
    mr: usize,
    nr: usize,
) {
    use core::arch::x86_64::*;
    const MR: usize = 6;
    const NR: usize = 16;
    debug_assert!(astrip.len() >= kc * MR && bstrip.len() >= kc * NR);
    debug_assert!(mr <= MR && nr <= NR);
    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    let mut ap = astrip.as_ptr();
    let mut bp = bstrip.as_ptr();
    for _ in 0..kc {
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        for (ii, accrow) in acc.iter_mut().enumerate() {
            let av = _mm256_broadcast_ss(&*ap.add(ii));
            accrow[0] = _mm256_fmadd_ps(av, b0, accrow[0]);
            accrow[1] = _mm256_fmadd_ps(av, b1, accrow[1]);
        }
        ap = ap.add(MR);
        bp = bp.add(NR);
    }
    if mr == MR && nr == NR {
        // Full tile: read-modify-write the output rows directly.
        for (ii, accrow) in acc.iter().enumerate() {
            let row = out.add(ii * row_stride);
            _mm256_storeu_ps(row, _mm256_add_ps(_mm256_loadu_ps(row), accrow[0]));
            let hi = row.add(8);
            _mm256_storeu_ps(hi, _mm256_add_ps(_mm256_loadu_ps(hi), accrow[1]));
        }
    } else {
        // Ragged edge: land the accumulators in a stack tile, then add
        // back only the live `mr`×`nr` corner.
        let mut tile = [0.0f32; MR * NR];
        for (ii, accrow) in acc.iter().enumerate() {
            _mm256_storeu_ps(tile.as_mut_ptr().add(ii * NR), accrow[0]);
            _mm256_storeu_ps(tile.as_mut_ptr().add(ii * NR + 8), accrow[1]);
        }
        for ii in 0..mr {
            let row = out.add(ii * row_stride);
            for jj in 0..nr {
                *row.add(jj) += tile[ii * NR + jj];
            }
        }
    }
}

/// NEON 4×8 kernel: 8 `float32x4_t` accumulators (4 rows × two 4-lane
/// vectors). NEON is baseline on `aarch64`, so no runtime detection is
/// needed — the kernel is always available there.
#[cfg(target_arch = "aarch64")]
pub struct NeonKernel;

#[cfg(target_arch = "aarch64")]
impl MicroKernel for NeonKernel {
    fn mr(&self) -> usize {
        4
    }

    fn nr(&self) -> usize {
        8
    }

    fn name(&self) -> &'static str {
        "neon"
    }

    fn dispatch_counter(&self) -> &'static str {
        "tensor.kernel.dispatch.neon"
    }

    unsafe fn run(
        &self,
        kc: usize,
        astrip: &[f32],
        bstrip: &[f32],
        out: *mut f32,
        row_stride: usize,
        mr: usize,
        nr: usize,
    ) {
        use core::arch::aarch64::*;
        const MR: usize = 4;
        const NR: usize = 8;
        debug_assert!(astrip.len() >= kc * MR && bstrip.len() >= kc * NR);
        debug_assert!(mr <= MR && nr <= NR);
        let mut acc = [[vdupq_n_f32(0.0); 2]; MR];
        let mut ap = astrip.as_ptr();
        let mut bp = bstrip.as_ptr();
        for _ in 0..kc {
            let b0 = vld1q_f32(bp);
            let b1 = vld1q_f32(bp.add(4));
            for (ii, accrow) in acc.iter_mut().enumerate() {
                let av = vdupq_n_f32(*ap.add(ii));
                accrow[0] = vfmaq_f32(accrow[0], av, b0);
                accrow[1] = vfmaq_f32(accrow[1], av, b1);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        if mr == MR && nr == NR {
            for (ii, accrow) in acc.iter().enumerate() {
                let row = out.add(ii * row_stride);
                vst1q_f32(row, vaddq_f32(vld1q_f32(row), accrow[0]));
                let hi = row.add(4);
                vst1q_f32(hi, vaddq_f32(vld1q_f32(hi), accrow[1]));
            }
        } else {
            let mut tile = [0.0f32; MR * NR];
            for (ii, accrow) in acc.iter().enumerate() {
                vst1q_f32(tile.as_mut_ptr().add(ii * NR), accrow[0]);
                vst1q_f32(tile.as_mut_ptr().add(ii * NR + 4), accrow[1]);
            }
            for ii in 0..mr {
                let row = out.add(ii * row_stride);
                for jj in 0..nr {
                    *row.add(jj) += tile[ii * NR + jj];
                }
            }
        }
    }
}

/// True when `ENHANCENET_FORCE_SCALAR` is set to anything but `0` or the
/// empty string. Read per call so tests can assert on it; the *selection*
/// result is still cached by [`selected_kernel`].
pub fn force_scalar_requested() -> bool {
    match std::env::var("ENHANCENET_FORCE_SCALAR") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// True when the host CPU offers a vectorized kernel, regardless of
/// whether dispatch was forced to scalar. Drives the
/// `tensor.kernel.simd_available` counter, which lets
/// `bench_summary --require-simd` distinguish "ran scalar because the
/// host has no SIMD" (fine) from "ran scalar on SIMD hardware" (a
/// dispatch regression).
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        return std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma");
    }
    #[cfg(target_arch = "aarch64")]
    {
        return true;
    }
    #[allow(unreachable_code)]
    false
}

/// The micro-kernel every blocked GEMM in this process uses, chosen once:
/// `ENHANCENET_FORCE_SCALAR` wins, then AVX2+FMA where detected, then NEON
/// on `aarch64`, then the scalar fallback.
pub fn selected_kernel() -> &'static dyn MicroKernel {
    static SELECTED: OnceLock<&'static dyn MicroKernel> = OnceLock::new();
    *SELECTED.get_or_init(|| {
        if force_scalar_requested() {
            return &ScalarKernel;
        }
        #[cfg(target_arch = "x86_64")]
        if simd_available() {
            return &Avx2Kernel;
        }
        #[cfg(target_arch = "aarch64")]
        return &NeonKernel;
        #[allow(unreachable_code)]
        &ScalarKernel
    })
}

/// Every kernel the host can execute — the scalar fallback plus whichever
/// vectorized kernels runtime detection admits. Tests iterate this to pin
/// each dispatch variant against the reference in-process, without
/// spawning one subprocess per `ENHANCENET_FORCE_SCALAR` state.
pub fn available_kernels() -> Vec<&'static dyn MicroKernel> {
    let mut kernels: Vec<&'static dyn MicroKernel> = vec![&ScalarKernel];
    #[cfg(target_arch = "x86_64")]
    if simd_available() {
        kernels.push(&Avx2Kernel);
    }
    #[cfg(target_arch = "aarch64")]
    kernels.push(&NeonKernel);
    kernels
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference for one packed micro-tile: the triple loop over strips.
    fn reference_tile(kc: usize, astrip: &[f32], bstrip: &[f32], mr: usize, nr: usize) -> Vec<f32> {
        let (kmr, knr) = (astrip.len() / kc, bstrip.len() / kc);
        let mut out = vec![0.0f32; mr * nr];
        for kk in 0..kc {
            for ii in 0..mr {
                for jj in 0..nr {
                    out[ii * nr + jj] += astrip[kk * kmr + ii] * bstrip[kk * knr + jj];
                }
            }
        }
        out
    }

    /// Deterministic small-integer strips: products stay exactly
    /// representable, so scalar and FMA kernels must agree bitwise.
    fn int_strip(len: usize, seed: usize) -> Vec<f32> {
        (0..len).map(|v| ((v * 13 + seed * 7) % 7) as f32 - 3.0).collect()
    }

    /// Runs `kernel` on an `mr`×`nr` corner embedded in a wider output
    /// matrix and returns that corner.
    fn run_kernel_tile(
        kernel: &dyn MicroKernel,
        kc: usize,
        astrip: &[f32],
        bstrip: &[f32],
        mr: usize,
        nr: usize,
    ) -> Vec<f32> {
        // Give the tile a wider row stride than nr so stride handling and
        // out-of-tile preservation are both exercised.
        let stride = kernel.nr() + 3;
        let mut out = vec![0.0f32; (kernel.mr() + 1) * stride];
        unsafe {
            kernel.run(kc, astrip, bstrip, out.as_mut_ptr(), stride, mr, nr);
        }
        let mut corner = Vec::with_capacity(mr * nr);
        for ii in 0..mr {
            corner.extend_from_slice(&out[ii * stride..ii * stride + nr]);
        }
        // Everything outside the corner must be untouched.
        for (idx, &v) in out.iter().enumerate() {
            let (r, c) = (idx / stride, idx % stride);
            if r >= mr || c >= nr {
                assert_eq!(v, 0.0, "kernel {} wrote outside its {mr}x{nr} tile", kernel.name());
            }
        }
        corner
    }

    #[test]
    fn every_kernel_matches_reference_on_full_and_ragged_tiles() {
        for kernel in available_kernels() {
            let (kmr, knr) = (kernel.mr(), kernel.nr());
            for &kc in &[1usize, 2, 7, 33] {
                let astrip = int_strip(kc * kmr, 1);
                let bstrip = int_strip(kc * knr, 2);
                // Every ragged corner, including the full tile.
                for mr in 1..=kmr {
                    for nr in 1..=knr {
                        let got = run_kernel_tile(kernel, kc, &astrip, &bstrip, mr, nr);
                        let want = reference_tile(kc, &astrip, &bstrip, mr, nr);
                        assert_eq!(
                            got,
                            want,
                            "kernel {} mismatch at kc={kc} mr={mr} nr={nr}",
                            kernel.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn kernel_accumulates_into_existing_output() {
        for kernel in available_kernels() {
            let (kmr, knr) = (kernel.mr(), kernel.nr());
            let kc = 3;
            let astrip = int_strip(kc * kmr, 3);
            let bstrip = int_strip(kc * knr, 4);
            let stride = knr;
            let mut out = vec![1.0f32; kmr * stride];
            unsafe {
                kernel.run(kc, &astrip, &bstrip, out.as_mut_ptr(), stride, kmr, knr);
            }
            let want = reference_tile(kc, &astrip, &bstrip, kmr, knr);
            for (o, w) in out.iter().zip(&want) {
                assert_eq!(*o, w + 1.0, "kernel {} must += into out", kernel.name());
            }
        }
    }

    #[test]
    fn kernel_selection_is_consistent_and_named() {
        let selected = selected_kernel();
        let names: Vec<&str> = available_kernels().iter().map(|k| k.name()).collect();
        assert!(names.contains(&selected.name()), "selected {:?} not available", selected.name());
        assert!(names.contains(&"scalar"), "scalar fallback must always be available");
        for kernel in available_kernels() {
            assert!(["scalar", "avx2", "neon"].contains(&kernel.name()));
            assert!(kernel.dispatch_counter().starts_with("tensor.kernel.dispatch."));
            assert!(kernel.dispatch_counter().ends_with(kernel.name()));
            assert!(kernel.mr() >= 1 && kernel.nr() >= 1);
        }
        // Selection is cached: repeated calls return the same kernel.
        assert_eq!(selected.name(), selected_kernel().name());
    }

    #[test]
    fn scalar_kernel_shape_matches_pre_dispatch_engine() {
        // The historical engine used a 4x8 tile; the scalar fallback must
        // keep it so forced-scalar runs reproduce old results bit-for-bit.
        assert_eq!(ScalarKernel.mr(), 4);
        assert_eq!(ScalarKernel.nr(), 8);
    }
}
