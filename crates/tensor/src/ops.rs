//! Elementwise arithmetic with NumPy-style broadcasting, plus the scalar
//! nonlinearities the models need (sigmoid, tanh, relu, exp, ln, …).

use crate::shape::{broadcast_shapes_array, broadcast_strides_array, Shape, MAX_RANK};
use crate::tensor::Tensor;
use std::ops::{Add, Div, Mul, Neg, Sub};

impl Tensor {
    /// Applies `f` pairwise over the broadcast of `self` and `other`.
    ///
    /// The fast path (identical shapes) is a straight zip; the general path
    /// walks the broadcast index space with per-input strides.
    pub fn broadcast_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let mut out = Tensor::default();
        self.broadcast_with_into(other, f, &mut out);
        out
    }

    /// Broadcasting combine writing into `out` (buffers reused).
    /// [`Tensor::broadcast_with`] delegates here, so the allocating and the
    /// arena paths run the exact same loop and are bitwise identical.
    pub fn broadcast_with_into(
        &self,
        other: &Tensor,
        f: impl Fn(f32, f32) -> f32,
        out: &mut Tensor,
    ) {
        if self.shape == other.shape {
            return self.zip_with_into(other, f, out);
        }
        // All index bookkeeping lives on the stack (rank is tiny) so warm
        // executions of a compiled plan stay allocation-free.
        let mut shape_buf = [0usize; MAX_RANK];
        let rank = broadcast_shapes_array(&self.shape, &other.shape, &mut shape_buf);
        let out_shape = &shape_buf[..rank];
        let numel = Shape::numel(out_shape);
        let mut sa = [0usize; MAX_RANK];
        let mut sb = [0usize; MAX_RANK];
        broadcast_strides_array(&self.shape, out_shape, &mut sa);
        broadcast_strides_array(&other.shape, out_shape, &mut sb);
        out.reset_for(out_shape);
        let mut idx = [0usize; MAX_RANK];
        let mut off_a = 0usize;
        let mut off_b = 0usize;
        for _ in 0..numel {
            out.data.push(f(self.data[off_a], other.data[off_b]));
            // Odometer increment with incremental offset updates.
            for ax in (0..rank).rev() {
                idx[ax] += 1;
                off_a += sa[ax];
                off_b += sb[ax];
                if idx[ax] < out_shape[ax] {
                    break;
                }
                off_a -= sa[ax] * idx[ax];
                off_b -= sb[ax] * idx[ax];
                idx[ax] = 0;
            }
        }
    }

    /// `self + other` with broadcasting.
    pub fn add_t(&self, other: &Tensor) -> Tensor {
        self.broadcast_with(other, |a, b| a + b)
    }

    /// `self + other` with broadcasting, into `out`.
    pub fn add_t_into(&self, other: &Tensor, out: &mut Tensor) {
        self.broadcast_with_into(other, |a, b| a + b, out)
    }

    /// `self - other` with broadcasting.
    pub fn sub_t(&self, other: &Tensor) -> Tensor {
        self.broadcast_with(other, |a, b| a - b)
    }

    /// `self - other` with broadcasting, into `out`.
    pub fn sub_t_into(&self, other: &Tensor, out: &mut Tensor) {
        self.broadcast_with_into(other, |a, b| a - b, out)
    }

    /// `self * other` (elementwise, ⊙ in the paper) with broadcasting.
    pub fn mul_t(&self, other: &Tensor) -> Tensor {
        self.broadcast_with(other, |a, b| a * b)
    }

    /// `self * other` with broadcasting, into `out`.
    pub fn mul_t_into(&self, other: &Tensor, out: &mut Tensor) {
        self.broadcast_with_into(other, |a, b| a * b, out)
    }

    /// `self / other` with broadcasting.
    pub fn div_t(&self, other: &Tensor) -> Tensor {
        self.broadcast_with(other, |a, b| a / b)
    }

    /// `self / other` with broadcasting, into `out`.
    pub fn div_t_into(&self, other: &Tensor, out: &mut Tensor) {
        self.broadcast_with_into(other, |a, b| a / b, out)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Adds `s` to every element, into `out`.
    pub fn add_scalar_into(&self, s: f32, out: &mut Tensor) {
        self.map_into(|v| v + s, out)
    }

    /// Multiplies every element by `s`.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Multiplies every element by `s`, into `out`.
    pub fn mul_scalar_into(&self, s: f32, out: &mut Tensor) {
        self.map_into(|v| v * s, out)
    }

    /// In-place `self += other` (identical shapes only; used for gradient
    /// accumulation where allocation must be avoided).
    pub fn add_assign_t(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "add_assign_t requires identical shapes: {:?} vs {:?}",
            self.shape, other.shape
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place fused `self += alpha * other` (identical shapes).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy requires identical shapes");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    // ---------------------------------------------------------- nonlinearities

    /// Logistic sigmoid `σ(x) = 1 / (1 + e^{-x})`, numerically stable for
    /// large |x|.
    pub fn sigmoid(&self) -> Tensor {
        self.map(sigmoid_scalar)
    }

    /// Sigmoid into `out` (same scalar kernel as [`Tensor::sigmoid`]).
    pub fn sigmoid_into(&self, out: &mut Tensor) {
        self.map_into(sigmoid_scalar, out)
    }

    /// Hyperbolic tangent.
    pub fn tanh_t(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Hyperbolic tangent into `out`.
    pub fn tanh_t_into(&self, out: &mut Tensor) {
        self.map_into(f32::tanh, out)
    }

    /// Rectified linear unit `max(x, 0)`.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// ReLU into `out`.
    pub fn relu_into(&self, out: &mut Tensor) {
        self.map_into(|v| v.max(0.0), out)
    }

    /// Elementwise exponential.
    pub fn exp_t(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Exponential into `out`.
    pub fn exp_t_into(&self, out: &mut Tensor) {
        self.map_into(f32::exp, out)
    }

    /// Elementwise natural log.
    pub fn ln_t(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Natural log into `out`.
    pub fn ln_t_into(&self, out: &mut Tensor) {
        self.map_into(f32::ln, out)
    }

    /// Elementwise square root.
    pub fn sqrt_t(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Square root into `out`.
    pub fn sqrt_t_into(&self, out: &mut Tensor) {
        self.map_into(f32::sqrt, out)
    }

    /// Elementwise absolute value.
    pub fn abs_t(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Absolute value into `out`.
    pub fn abs_t_into(&self, out: &mut Tensor) {
        self.map_into(f32::abs, out)
    }

    /// Elementwise power with a constant exponent.
    pub fn powf_t(&self, e: f32) -> Tensor {
        self.map(|v| v.powf(e))
    }

    /// Elementwise maximum against a constant.
    pub fn clamp_min(&self, lo: f32) -> Tensor {
        self.map(|v| v.max(lo))
    }

    /// Elementwise clamp into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|v| v.clamp(lo, hi))
    }
}

/// Numerically-stable scalar sigmoid shared with the autodiff backward pass.
pub(crate) fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $tmethod:ident) => {
        impl $trait for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.$tmethod(rhs)
            }
        }
        impl $trait<f32> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f32) -> Tensor {
                self.$tmethod(&Tensor::scalar(rhs))
            }
        }
    };
}

impl_binop!(Add, add, add_t);
impl_binop!(Sub, sub, sub_t);
impl_binop!(Mul, mul, mul_t);
impl_binop!(Div, div, div_t);

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|v| -v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_same_shape() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        assert_eq!(a.add_t(&b).data(), &[11.0, 22.0]);
    }

    #[test]
    fn broadcast_row_to_matrix() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let row = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        let r = m.add_t(&row);
        assert_eq!(r.shape(), &[2, 3]);
        assert_eq!(r.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn broadcast_column_to_matrix() {
        let m = Tensor::ones(&[2, 3]);
        let col = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let r = m.mul_t(&col);
        assert_eq!(r.data(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn broadcast_outer_product_shapes() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]);
        let b = Tensor::from_vec(vec![10.0, 100.0], &[1, 2]);
        let r = a.mul_t(&b);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), &[10.0, 100.0, 20.0, 200.0, 30.0, 300.0]);
    }

    #[test]
    fn scalar_broadcast_via_operator() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let r = &a * 3.0;
        assert_eq!(r.data(), &[3.0, 6.0]);
    }

    #[test]
    fn broadcast_3d_with_matrix() {
        // [2,2,2] + [2,2] broadcasts over the leading batch axis.
        let a = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[2, 2, 2]);
        let b = Tensor::from_vec(vec![100.0, 200.0, 300.0, 400.0], &[2, 2]);
        let r = a.add_t(&b);
        assert_eq!(r.data(), &[100.0, 201.0, 302.0, 403.0, 104.0, 205.0, 306.0, 407.0]);
    }

    #[test]
    fn sigmoid_is_stable_and_correct() {
        let t = Tensor::from_vec(vec![0.0, 100.0, -100.0], &[3]);
        let s = t.sigmoid();
        assert!((s.data()[0] - 0.5).abs() < 1e-6);
        assert!((s.data()[1] - 1.0).abs() < 1e-6);
        assert!(s.data()[2].abs() < 1e-6);
        assert!(!s.has_non_finite());
    }

    #[test]
    fn relu_zeroes_negatives() {
        let t = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(t.relu().data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Tensor::ones(&[2]);
        a.add_assign_t(&Tensor::from_vec(vec![1.0, 2.0], &[2]));
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn axpy_fused_update() {
        let mut a = Tensor::ones(&[2]);
        a.axpy(0.5, &Tensor::from_vec(vec![2.0, 4.0], &[2]));
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn neg_operator() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        assert_eq!((-&a).data(), &[-1.0, 2.0]);
    }

    #[test]
    fn div_broadcast() {
        let a = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[2, 2]);
        let d = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        assert_eq!(a.div_t(&d).data(), &[1.0, 1.0, 3.0, 2.0]);
    }

    #[test]
    fn clamp_bounds() {
        let a = Tensor::from_vec(vec![-5.0, 0.5, 5.0], &[3]);
        assert_eq!(a.clamp(0.0, 1.0).data(), &[0.0, 0.5, 1.0]);
    }
}
