//! Matrix products: 2-D `matmul`, batched `bmm`, and the batched-with-shared
//! right-hand-side variant the graph convolution uses.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Below this many output elements the rayon fork costs more than it saves.
const PAR_THRESHOLD: usize = 16 * 1024;

/// Telemetry for one kernel dispatch: calls, output elements produced, and
/// which path (rayon vs. serial) the size heuristic picked. Recorded once
/// per public entry point, outside the parallel region, so the hot loops
/// stay untouched; a single atomic load when telemetry is disabled.
#[inline]
fn record_dispatch(calls: &'static str, elems: &'static str, path: &'static str, n: usize) {
    if enhancenet_telemetry::enabled() {
        enhancenet_telemetry::count(calls, 1);
        enhancenet_telemetry::count(elems, n as u64);
        enhancenet_telemetry::count(path, 1);
    }
}

/// Core `[m,k] x [k,n] -> [m,n]` kernel in `ikj` order (streams `b` rows,
/// accumulates into the output row — cache-friendly without blocking).
fn mm_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let row = |i: usize, out_row: &mut [f32]| {
        for kk in 0..k {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..kk * n + n];
            for (o, bv) in out_row.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    };
    if m * n >= PAR_THRESHOLD {
        out.par_chunks_mut(n).enumerate().for_each(|(i, out_row)| row(i, out_row));
    } else {
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            row(i, out_row);
        }
    }
}

impl Tensor {
    /// 2-D matrix product `[m,k] x [k,n] -> [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank 2 with a matching inner
    /// dimension.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2, got {:?}", self.shape);
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {:?} x {:?}", self.shape, other.shape);
        record_dispatch(
            "tensor.matmul.calls",
            "tensor.matmul.elements",
            if m * n >= PAR_THRESHOLD { "tensor.matmul.par" } else { "tensor.matmul.serial" },
            m * n,
        );
        let mut out = vec![0.0f32; m * n];
        mm_kernel(&self.data, &other.data, &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Batched matrix product `[b,m,k] x [b,k,n] -> [b,m,n]`.
    ///
    /// Batches are processed in parallel when large enough.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm lhs must be rank 3, got {:?}", self.shape);
        assert_eq!(other.rank(), 3, "bmm rhs must be rank 3, got {:?}", other.shape);
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "bmm batch dims differ: {:?} x {:?}", self.shape, other.shape);
        assert_eq!(k, k2, "bmm inner dims differ: {:?} x {:?}", self.shape, other.shape);
        record_dispatch(
            "tensor.bmm.calls",
            "tensor.bmm.elements",
            if b * m * n >= PAR_THRESHOLD && b > 1 {
                "tensor.bmm.par"
            } else {
                "tensor.bmm.serial"
            },
            b * m * n,
        );
        let mut out = vec![0.0f32; b * m * n];
        let work = |(bi, chunk): (usize, &mut [f32])| {
            mm_kernel(
                &self.data[bi * m * k..(bi + 1) * m * k],
                &other.data[bi * k * n..(bi + 1) * k * n],
                chunk,
                m,
                k,
                n,
            );
        };
        if b * m * n >= PAR_THRESHOLD && b > 1 {
            out.par_chunks_mut(m * n).enumerate().for_each(work);
        } else {
            out.chunks_mut(m * n).enumerate().for_each(work);
        }
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Batched product with a shared left matrix: `[m,k] x [b,k,n] -> [b,m,n]`.
    ///
    /// This is the graph-convolution pattern `A · Xᵦ` where the adjacency is
    /// shared across the batch.
    pub fn matmul_broadcast_left(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "lhs must be rank 2, got {:?}", self.shape);
        assert_eq!(other.rank(), 3, "rhs must be rank 3, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (b, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(k, k2, "inner dims differ: {:?} x {:?}", self.shape, other.shape);
        record_dispatch(
            "tensor.mm_bcast_left.calls",
            "tensor.mm_bcast_left.elements",
            // Per-batch kernels may still split rows; the dispatch itself
            // walks batches serially.
            if m * n >= PAR_THRESHOLD {
                "tensor.mm_bcast_left.par"
            } else {
                "tensor.mm_bcast_left.serial"
            },
            b * m * n,
        );
        let mut out = vec![0.0f32; b * m * n];
        out.chunks_mut(m * n).enumerate().for_each(|(bi, chunk)| {
            mm_kernel(&self.data, &other.data[bi * k * n..(bi + 1) * k * n], chunk, m, k, n);
        });
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Batched product with a shared right matrix: `[b,m,k] x [k,n] -> [b,m,n]`.
    ///
    /// This is the shared-filter pattern `Xᵦ · W`: one weight matrix applied
    /// to every batch element. Implemented as a single `[b·m,k] x [k,n]`
    /// product.
    pub fn matmul_broadcast_right(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "lhs must be rank 3, got {:?}", self.shape);
        assert_eq!(other.rank(), 2, "rhs must be rank 2, got {:?}", other.shape);
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        assert_eq!(k, other.shape[0], "inner dims differ: {:?} x {:?}", self.shape, other.shape);
        let n = other.shape[1];
        let flat = Tensor { shape: vec![b * m, k], data: self.data.clone() };
        let mut out = flat.matmul(other);
        out.shape = vec![b, m, n];
        out
    }

    /// Dot product of two rank-1 tensors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.rank(), 1, "dot expects rank-1 operands");
        assert_eq!(self.shape, other.shape, "dot length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Matrix power `self^p` for a square rank-2 tensor (`p = 0` gives the
    /// identity). Used to build k-hop graph supports.
    pub fn matrix_power(&self, p: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "matrix_power expects a matrix");
        assert_eq!(self.shape[0], self.shape[1], "matrix_power expects a square matrix");
        let n = self.shape[0];
        let mut acc = Tensor::eye(n);
        for _ in 0..p {
            acc = acc.matmul(self);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        assert_eq!(a.matmul(&Tensor::eye(3)).data(), a.data());
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_rows(&[vec![1.0, 0.0, 2.0]]);
        let b = Tensor::from_rows(&[vec![1.0, 1.0], vec![9.0, 9.0], vec![2.0, 3.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[1, 2]);
        assert_eq!(c.data(), &[5.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_rejects_mismatched_inner() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 5]));
    }

    #[test]
    fn bmm_independent_batches() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], &[2, 2, 2]);
        let c = a.bmm(&b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(&c.data()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&c.data()[4..], &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn broadcast_left_equals_per_batch_matmul() {
        let a = Tensor::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]); // swap rows
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[2, 2, 2]);
        let y = a.matmul_broadcast_left(&x);
        assert_eq!(&y.data()[..4], &[3.0, 4.0, 1.0, 2.0]);
        assert_eq!(&y.data()[4..], &[7.0, 8.0, 5.0, 6.0]);
    }

    #[test]
    fn broadcast_right_equals_flattened_matmul() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 3, 2]);
        let w = Tensor::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 1.0, 2.0]]);
        let y = x.matmul_broadcast_right(&w);
        assert_eq!(y.shape(), &[2, 3, 3]);
        // first row: [0,1] @ w = [0, 1, 2]
        assert_eq!(&y.data()[..3], &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn matrix_power_zero_is_identity() {
        let a = Tensor::from_rows(&[vec![2.0, 0.0], vec![0.0, 2.0]]);
        assert!(a.matrix_power(0).allclose(&Tensor::eye(2), 0.0));
        assert!(a.matrix_power(3).allclose(&(&Tensor::eye(2) * 8.0), 1e-5));
    }

    #[test]
    fn large_matmul_parallel_path_matches_serial() {
        // Force the rayon path (> PAR_THRESHOLD output elements) and compare
        // against a small-block reference.
        let m = 160;
        let a = Tensor::from_vec((0..m * m).map(|v| (v % 7) as f32 * 0.25).collect(), &[m, m]);
        let b = Tensor::eye(m);
        assert!(a.matmul(&b).allclose(&a, 1e-5));
    }
}
