//! Matrix products: a blocked, packed GEMM engine serving 2-D `matmul`,
//! batched `bmm`, the broadcast variants the graph convolution and shared
//! filters use, and transpose-fused `_tn`/`_nt` forms for the backward pass.
//!
//! # Engine layout
//!
//! One engine computes `C += A·B` for any combination of normal/transposed
//! operands: `MatRef` reads either layout through row/column strides, so a
//! transposed operand is never materialized. Dispatch is by arithmetic work
//! (`m·n·k` multiply-adds):
//!
//! * below `PACK_MIN_WORK` — direct strided loops (`gemm_direct`); the
//!   pack cost would exceed the whole product,
//! * otherwise — BLIS-style blocking (`gemm_blocked`): the `n` dimension in
//!   `NC` slabs, the `k` dimension in `KC` slices, the `m` dimension in
//!   `MC` row blocks. B slabs pack into `nr`-column strips; A blocks pack
//!   per-thread into `mr`-row strips; the register-tiled micro-kernel chosen
//!   by [`crate::kernel::selected_kernel`] (AVX2+FMA 6×16, NEON 4×8, or the
//!   scalar 4×8 fallback — `ENHANCENET_FORCE_SCALAR=1` pins the latter) does
//!   the arithmetic, so panel shapes follow the selected kernel's `mr`/`nr`.
//!   When total work reaches `PAR_MIN_WORK` one GEMM fans out internally:
//!   across `MC` row blocks for tall outputs, across `NC` column slabs
//!   for wide ones (each slab task packing its own panels from its worker
//!   thread's scratch pool),
//! * batched entry points additionally parallelize across the batch when the
//!   summed work clears the same threshold.
//!
//! Pack buffers come from the thread-local [`crate::scratch`] pool, so
//! steady-state training steps re-run the engine without allocating
//! temporaries. Counters: `tensor.pack.bytes` (bytes packed),
//! `tensor.scratch.hit`/`.miss` (pool behavior), the per-entry-point
//! `tensor.<kernel>.{calls,elements,par,serial}` dispatch counters, plus —
//! per blocked dispatch — `tensor.kernel.dispatch.{avx2,neon,scalar}`,
//! `tensor.kernel.simd_available` (host capability, regardless of forcing),
//! and `tensor.gemm.par_blocks` (intra-GEMM fan-out width).

use crate::kernel::{self, MicroKernel};
use crate::scratch::with_scratch;
use crate::shape::MAX_RANK;
use crate::tensor::Tensor;
use rayon::prelude::*;

/// Row-block height: the A panel (`MC`×`KC` floats ≈ 64 KiB) stays L2-hot.
/// Not required to divide any kernel's `mr`; packing pads the last strip.
const MC: usize = 64;
/// Depth of one packed slice along the shared `k` dimension.
const KC: usize = 256;
/// Width of one packed B slab (`KC`×`NC` floats = 512 KiB, streamed by
/// strip). A multiple of every kernel's `nr`, so slabs tile evenly.
const NC: usize = 512;

/// Below this many multiply-adds the packed path costs more than it saves.
const PACK_MIN_WORK: usize = 8 * 1024;
/// At or above this many multiply-adds a dispatch forks to rayon.
const PAR_MIN_WORK: usize = 1 << 20;

/// Telemetry for one kernel dispatch: calls, output elements produced, and
/// which path (rayon vs. serial) the size heuristic picked. Recorded once
/// per public entry point, outside the parallel region, so the hot loops
/// stay untouched; a single atomic load when telemetry is disabled.
#[inline]
fn record_dispatch(calls: &'static str, elems: &'static str, path: &'static str, n: usize) {
    if enhancenet_telemetry::enabled() {
        enhancenet_telemetry::count(calls, 1);
        enhancenet_telemetry::count(elems, n as u64);
        enhancenet_telemetry::count(path, 1);
    }
}

/// Bytes written into pack buffers, recorded outside the hot loops.
#[inline]
fn record_pack_bytes(elems: usize) {
    if enhancenet_telemetry::enabled() {
        enhancenet_telemetry::count("tensor.pack.bytes", (elems * size_of::<f32>()) as u64);
    }
}

/// Telemetry for one blocked dispatch: which micro-kernel ran, whether the
/// host CPU *could* have run a vectorized one (so `bench_summary
/// --require-simd` can tell "no SIMD hardware" apart from "SIMD silently
/// disabled"), and the intra-GEMM parallel fan-out width (0 = serial).
#[inline]
fn record_blocked_dispatch(kern: &dyn MicroKernel, par_fanout: usize) {
    if !enhancenet_telemetry::enabled() {
        return;
    }
    enhancenet_telemetry::count(kern.dispatch_counter(), 1);
    if kernel::simd_available() {
        enhancenet_telemetry::count("tensor.kernel.simd_available", 1);
    }
    if par_fanout > 0 {
        enhancenet_telemetry::count("tensor.gemm.par_blocks", par_fanout as u64);
    }
}

/// A read-only matrix view over a contiguous buffer: element `(r, c)` lives
/// at `data[r·rs + c·cs]`. `rs = cols, cs = 1` reads row-major storage as-is;
/// `rs = 1, cs = rows` reads it as its own transpose — that one constructor
/// is the whole transpose-fusion contract.
#[derive(Clone, Copy)]
struct MatRef<'a> {
    data: &'a [f32],
    rs: usize,
    cs: usize,
}

impl<'a> MatRef<'a> {
    /// Views `data` as a row-major `[rows, cols]` matrix.
    fn normal(data: &'a [f32], cols: usize) -> Self {
        Self { data, rs: cols, cs: 1 }
    }

    /// Views a row-major `[cols, rows]` buffer as the logical `[rows, cols]`
    /// transpose, without moving any data.
    fn transposed(data: &'a [f32], rows: usize) -> Self {
        Self { data, rs: 1, cs: rows }
    }

    #[inline(always)]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.rs + c * self.cs]
    }
}

/// `out[m,n] += a[m,k] · b[k,n]` with automatic path selection. `out` must
/// arrive zeroed (the public entry points allocate it that way).
#[inline]
fn gemm(out: &mut [f32], a: MatRef, b: MatRef, m: usize, k: usize, n: usize, allow_par: bool) {
    debug_assert_eq!(out.len(), m * n);
    let work = m * n * k;
    if work < PACK_MIN_WORK {
        gemm_direct(out, a, b, m, k, n);
    } else {
        gemm_blocked(out, a, b, m, k, n, allow_par && work >= PAR_MIN_WORK);
    }
}

/// Small-product path: plain strided loops, no packing. Keeps the zero-skip
/// from the seed kernel — sparse adjacency rows cost nothing. Inlined so
/// batch loops specialize it for their (compile-time-known) stride patterns.
#[inline]
fn gemm_direct(out: &mut [f32], a: MatRef, b: MatRef, m: usize, k: usize, n: usize) {
    debug_assert_eq!(out.len(), m * n);
    if b.cs == 1 && a.cs == 1 {
        // Both operands row-major: the seed's ikj loop over contiguous row
        // slices — no strided index arithmetic in the inner loops. This is
        // the hot path for small batched products (per-entity filters).
        for (i, orow) in out.chunks_mut(n).enumerate() {
            let arow = &a.data[i * a.rs..i * a.rs + k];
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = &b.data[kk * b.rs..kk * b.rs + n];
                for (o, bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    } else if b.cs == 1 {
        // B rows are contiguous: stream them into the output row (ikj).
        for (i, orow) in out.chunks_mut(n).enumerate() {
            for kk in 0..k {
                let av = a.at(i, kk);
                if av == 0.0 {
                    continue;
                }
                let brow = &b.data[kk * b.rs..kk * b.rs + n];
                for (o, bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    } else {
        // B columns are contiguous (transposed view): dot products (ijk).
        for (i, orow) in out.chunks_mut(n).enumerate() {
            for (j, o) in orow.iter_mut().enumerate() {
                let bcol = &b.data[j * b.cs..j * b.cs + k];
                let mut acc = 0.0f32;
                for (kk, bv) in bcol.iter().enumerate() {
                    acc += a.at(i, kk) * bv;
                }
                *o += acc;
            }
        }
    }
}

/// Blocked path with the process-selected micro-kernel.
fn gemm_blocked(
    out: &mut [f32],
    a: MatRef,
    b: MatRef,
    m: usize,
    k: usize,
    n: usize,
    parallel: bool,
) {
    gemm_blocked_with(kernel::selected_kernel(), out, a, b, m, k, n, parallel);
}

/// Shares one output buffer across slab tasks that write provably disjoint
/// column ranges. Only ever dereferenced through [`MicroKernel::run`],
/// whose safety contract restates the disjointness requirement.
struct OutPtr(*mut f32);
unsafe impl Send for OutPtr {}
unsafe impl Sync for OutPtr {}

/// Blocked path: pack B once per `(jc, pc)` slab, pack A per row block, run
/// the register-tiled micro-kernel over the packed strips.
///
/// Intra-GEMM parallelism picks the wider fan-out: tall outputs split into
/// `MC`-row blocks (contiguous `MC·n` chunks of `out`, no overlap); wide
/// outputs split into `NC`-column slabs, each task owning columns
/// `[jc, jc+nc)` of every row and packing its own B panel. Serial calls
/// keep the row-block structure so a B panel packs once per `(jc, pc)`.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked_with(
    kern: &dyn MicroKernel,
    out: &mut [f32],
    a: MatRef,
    b: MatRef,
    m: usize,
    k: usize,
    n: usize,
    parallel: bool,
) {
    debug_assert_eq!(out.len(), m * n);
    let row_blocks = m.div_ceil(MC);
    let col_slabs = n.div_ceil(NC);
    let slab_parallel = parallel && col_slabs > 1 && col_slabs >= row_blocks;
    let row_parallel = parallel && !slab_parallel && row_blocks > 1;
    record_blocked_dispatch(
        kern,
        if slab_parallel {
            col_slabs
        } else if row_parallel {
            row_blocks
        } else {
            0
        },
    );
    if slab_parallel {
        let base = OutPtr(out.as_mut_ptr());
        let base = &base;
        (0..col_slabs).into_par_iter().for_each(|slab| {
            let jc = slab * NC;
            gemm_slab(kern, base.0, a, b, m, k, n, jc, NC.min(n - jc));
        });
        return;
    }
    let (kmr, knr) = (kern.mr(), kern.nr());
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        let nc_pad = nc.next_multiple_of(knr);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            with_scratch(kc * nc_pad, |bpack| {
                pack_b(bpack, b, pc, jc, kc, nc, knr);
                record_pack_bytes(kc * nc_pad);
                let bpack = &*bpack;
                let row_block = |(blk, orows): (usize, &mut [f32])| {
                    let ic = blk * MC;
                    let mc = MC.min(m - ic);
                    let mc_pad = mc.next_multiple_of(kmr);
                    with_scratch(kc * mc_pad, |apack| {
                        pack_a(apack, a, ic, pc, mc, kc, kmr);
                        record_pack_bytes(kc * mc_pad);
                        micro_loop(kern, kc, apack, bpack, orows.as_mut_ptr(), n, jc, mc, nc);
                    });
                };
                if row_parallel {
                    out.par_chunks_mut(MC * n).enumerate().for_each(row_block);
                } else {
                    out.chunks_mut(MC * n).enumerate().for_each(row_block);
                }
            });
        }
    }
}

/// One `NC`-column slab of the output, all rows, all `k` slices — the unit
/// of work of the wide-output parallel path. `base` points at element
/// `(0, 0)` of the full `m`×`n` output; this task only writes columns
/// `[jc, jc+nc)`, which no other slab touches.
#[allow(clippy::too_many_arguments)]
fn gemm_slab(
    kern: &dyn MicroKernel,
    base: *mut f32,
    a: MatRef,
    b: MatRef,
    m: usize,
    k: usize,
    n: usize,
    jc: usize,
    nc: usize,
) {
    let (kmr, knr) = (kern.mr(), kern.nr());
    let nc_pad = nc.next_multiple_of(knr);
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        with_scratch(kc * nc_pad, |bpack| {
            pack_b(bpack, b, pc, jc, kc, nc, knr);
            record_pack_bytes(kc * nc_pad);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                let mc_pad = mc.next_multiple_of(kmr);
                with_scratch(kc * mc_pad, |apack| {
                    pack_a(apack, a, ic, pc, mc, kc, kmr);
                    record_pack_bytes(kc * mc_pad);
                    // In bounds: rows ic..ic+mc and columns jc..jc+nc of
                    // the m×n output this slab exclusively owns.
                    let block = unsafe { base.add(ic * n) };
                    micro_loop(kern, kc, apack, bpack, block, n, jc, mc, nc);
                });
            }
        });
    }
}

/// Walks one packed A block against one packed B slab, dispatching the
/// micro-kernel per register tile. `out` points at row 0 of the block
/// (column 0 of the full matrix, row stride `row_stride`); `col0` is the
/// slab's first absolute column.
#[allow(clippy::too_many_arguments)]
fn micro_loop(
    kern: &dyn MicroKernel,
    kc: usize,
    apack: &[f32],
    bpack: &[f32],
    out: *mut f32,
    row_stride: usize,
    col0: usize,
    mc: usize,
    nc: usize,
) {
    let (kmr, knr) = (kern.mr(), kern.nr());
    for j0 in (0..nc).step_by(knr) {
        let nr = knr.min(nc - j0);
        let bstrip = &bpack[j0 * kc..j0 * kc + kc * knr];
        for i0 in (0..mc).step_by(kmr) {
            let mr = kmr.min(mc - i0);
            let astrip = &apack[i0 * kc..i0 * kc + kc * kmr];
            // Safety: the tile at rows [i0, i0+mr) × columns
            // [col0+j0, col0+j0+nr) lies inside the caller's exclusive
            // region, and the strips carry kc·mr/kc·nr packed floats.
            unsafe {
                let tile = out.add(i0 * row_stride + col0 + j0);
                kern.run(kc, astrip, bstrip, tile, row_stride, mr, nr);
            }
        }
    }
}

/// Packs `a[ic..ic+mc, pc..pc+kc]` into `mr`-row strips: strip `i0` holds
/// `buf[i0·kc + kk·mr + ii] = a(ic+i0+ii, pc+kk)`, zero-padded past `mc` so
/// the micro-kernel never branches on ragged rows.
fn pack_a(buf: &mut [f32], a: MatRef, ic: usize, pc: usize, mc: usize, kc: usize, mr: usize) {
    for i0 in (0..mc).step_by(mr) {
        let strip = &mut buf[i0 * kc..i0 * kc + kc * mr];
        for kk in 0..kc {
            let dst = &mut strip[kk * mr..kk * mr + mr];
            for (ii, d) in dst.iter_mut().enumerate() {
                *d = if i0 + ii < mc { a.at(ic + i0 + ii, pc + kk) } else { 0.0 };
            }
        }
    }
}

/// Packs `b[pc..pc+kc, jc..jc+nc]` into `nr`-column strips: strip `j0` holds
/// `buf[j0·kc + kk·nr + jj] = b(pc+kk, jc+j0+jj)`, zero-padded past `nc`.
fn pack_b(buf: &mut [f32], b: MatRef, pc: usize, jc: usize, kc: usize, nc: usize, nr: usize) {
    for j0 in (0..nc).step_by(nr) {
        let strip = &mut buf[j0 * kc..j0 * kc + kc * nr];
        for kk in 0..kc {
            let dst = &mut strip[kk * nr..kk * nr + nr];
            for (jj, d) in dst.iter_mut().enumerate() {
                *d = if j0 + jj < nc { b.at(pc + kk, jc + j0 + jj) } else { 0.0 };
            }
        }
    }
}

/// Test hook: the full blocked engine — packing, blocking, micro-loop,
/// optional intra-GEMM parallelism — with an explicit micro-kernel,
/// bypassing both the work heuristic and the process-wide selection.
/// Lets one test process pin every dispatch variant from
/// [`kernel::available_kernels`] against a reference, instead of spawning
/// a subprocess per `ENHANCENET_FORCE_SCALAR` state.
#[doc(hidden)]
pub fn matmul_with_kernel(
    a: &Tensor,
    b: &Tensor,
    kern: &dyn MicroKernel,
    parallel: bool,
) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_with_kernel lhs must be rank 2, got {:?}", a.shape());
    assert_eq!(b.rank(), 2, "matmul_with_kernel rhs must be rank 2, got {:?}", b.shape());
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_with_kernel inner dims differ: {:?} x {:?}", a.shape(), b.shape());
    let mut out = vec![0.0f32; m * n];
    gemm_blocked_with(
        kern,
        &mut out,
        MatRef::normal(a.data(), k),
        MatRef::normal(b.data(), n),
        m,
        k,
        n,
        parallel,
    );
    Tensor::from_vec(out, &[m, n])
}

/// Batched driver: one GEMM per batch over closure-provided operand views.
/// Forks across batches when the summed work is large; otherwise runs
/// batches serially, letting a single huge batch parallelize internally.
fn gemm_batched<'a>(
    out: &mut [f32],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
    a_of: impl Fn(usize) -> MatRef<'a> + Sync,
    b_of: impl Fn(usize) -> MatRef<'a> + Sync,
) {
    let per = m * n;
    if batch_parallel(batch, m, k, n) {
        out.par_chunks_mut(per).enumerate().for_each(|(bi, chunk)| {
            gemm(chunk, a_of(bi), b_of(bi), m, k, n, false);
        });
    } else {
        for (bi, chunk) in out.chunks_mut(per).enumerate() {
            gemm(chunk, a_of(bi), b_of(bi), m, k, n, true);
        }
    }
}

/// Work-based batch heuristic: fork across batches when the *summed*
/// multiply-adds clear `PAR_MIN_WORK` — many small batches are as
/// parallel-worthy as one large one.
fn batch_parallel(batch: usize, m: usize, k: usize, n: usize) -> bool {
    batch > 1 && batch * m * n * k >= PAR_MIN_WORK
}

/// Dispatch-path label for a 2-D product of `work` multiply-adds.
fn path_label(par: &'static str, serial: &'static str, work: usize) -> &'static str {
    if work >= PAR_MIN_WORK {
        par
    } else {
        serial
    }
}

/// Dispatch recording for the batched entry points: the path label reflects
/// whether the batch heuristic forks (or a lone batch parallelizes
/// internally).
#[allow(clippy::too_many_arguments)]
fn record_batched_dispatch(
    calls: &'static str,
    elems: &'static str,
    par: &'static str,
    serial: &'static str,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    if !enhancenet_telemetry::enabled() {
        return;
    }
    let forked = batch_parallel(batch, m, k, n) || (batch <= 1 && m * n * k >= PAR_MIN_WORK);
    record_dispatch(calls, elems, if forked { par } else { serial }, batch * m * n);
}

impl Tensor {
    /// 2-D matrix product `[m,k] x [k,n] -> [m,n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank 2 with a matching inner
    /// dimension.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Tensor::matmul`] into `out` (buffers reused; same GEMM engine, so
    /// the allocating and arena paths are bitwise identical).
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2, got {:?}", self.shape);
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims differ: {:?} x {:?}", self.shape, other.shape);
        record_dispatch(
            "tensor.matmul.calls",
            "tensor.matmul.elements",
            path_label("tensor.matmul.par", "tensor.matmul.serial", m * n * k),
            m * n,
        );
        out.data.clear();
        out.data.resize(m * n, 0.0);
        out.reset_shape(&[m, n]);
        gemm(
            &mut out.data,
            MatRef::normal(&self.data, k),
            MatRef::normal(&other.data, n),
            m,
            k,
            n,
            true,
        );
    }

    /// Transpose-fused product `selfᵀ · other`: `[k,m] x [k,n] -> [m,n]`.
    ///
    /// Reads `self` in transposed order directly — the backward pass's
    /// `Aᵀ·gy` without ever materializing `Aᵀ`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_tn lhs must be rank 2, got {:?}", self.shape);
        assert_eq!(other.rank(), 2, "matmul_tn rhs must be rank 2, got {:?}", other.shape);
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_tn shared dims differ: {:?} x {:?}", self.shape, other.shape);
        record_dispatch(
            "tensor.matmul_tn.calls",
            "tensor.matmul_tn.elements",
            path_label("tensor.matmul_tn.par", "tensor.matmul_tn.serial", m * n * k),
            m * n,
        );
        let mut out = vec![0.0f32; m * n];
        let a = MatRef::transposed(&self.data, m);
        gemm(&mut out, a, MatRef::normal(&other.data, n), m, k, n, true);
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose-fused product `self · otherᵀ`: `[m,k] x [n,k] -> [m,n]`.
    ///
    /// Reads `other` in transposed order directly — the backward pass's
    /// `gy·Bᵀ` without ever materializing `Bᵀ`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// [`Tensor::matmul_nt`] into `out` (buffers reused; same GEMM engine).
    pub fn matmul_nt_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "matmul_nt lhs must be rank 2, got {:?}", self.shape);
        assert_eq!(other.rank(), 2, "matmul_nt rhs must be rank 2, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_nt shared dims differ: {:?} x {:?}", self.shape, other.shape);
        record_dispatch(
            "tensor.matmul_nt.calls",
            "tensor.matmul_nt.elements",
            path_label("tensor.matmul_nt.par", "tensor.matmul_nt.serial", m * n * k),
            m * n,
        );
        out.data.clear();
        out.data.resize(m * n, 0.0);
        out.reset_shape(&[m, n]);
        let b = MatRef::transposed(&other.data, k);
        gemm(&mut out.data, MatRef::normal(&self.data, k), b, m, k, n, true);
    }

    /// Batched matrix product `[b,m,k] x [b,k,n] -> [b,m,n]`.
    ///
    /// Batches fork to rayon when the summed work is large enough; a single
    /// large batch parallelizes internally instead.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.bmm_into(other, &mut out);
        out
    }

    /// [`Tensor::bmm`] into `out` (buffers reused; same GEMM engine).
    pub fn bmm_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rank(), 3, "bmm lhs must be rank 3, got {:?}", self.shape);
        assert_eq!(other.rank(), 3, "bmm rhs must be rank 3, got {:?}", other.shape);
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "bmm batch dims differ: {:?} x {:?}", self.shape, other.shape);
        assert_eq!(k, k2, "bmm inner dims differ: {:?} x {:?}", self.shape, other.shape);
        record_batched_dispatch(
            "tensor.bmm.calls",
            "tensor.bmm.elements",
            "tensor.bmm.par",
            "tensor.bmm.serial",
            b,
            m,
            k,
            n,
        );
        out.data.clear();
        out.data.resize(b * m * n, 0.0);
        out.reset_shape(&[b, m, n]);
        gemm_batched(
            &mut out.data,
            b,
            m,
            k,
            n,
            |bi| MatRef::normal(&self.data[bi * m * k..(bi + 1) * m * k], k),
            |bi| MatRef::normal(&other.data[bi * k * n..(bi + 1) * k * n], n),
        );
    }

    /// Batched transpose-fused product `selfᵦᵀ · otherᵦ`:
    /// `[b,k,m] x [b,k,n] -> [b,m,n]`.
    pub fn bmm_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm_tn lhs must be rank 3, got {:?}", self.shape);
        assert_eq!(other.rank(), 3, "bmm_tn rhs must be rank 3, got {:?}", other.shape);
        let (b, k, m) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "bmm_tn batch dims differ: {:?} x {:?}", self.shape, other.shape);
        assert_eq!(k, k2, "bmm_tn shared dims differ: {:?} x {:?}", self.shape, other.shape);
        record_batched_dispatch(
            "tensor.bmm_tn.calls",
            "tensor.bmm_tn.elements",
            "tensor.bmm_tn.par",
            "tensor.bmm_tn.serial",
            b,
            m,
            k,
            n,
        );
        let mut out = vec![0.0f32; b * m * n];
        gemm_batched(
            &mut out,
            b,
            m,
            k,
            n,
            |bi| MatRef::transposed(&self.data[bi * k * m..(bi + 1) * k * m], m),
            |bi| MatRef::normal(&other.data[bi * k * n..(bi + 1) * k * n], n),
        );
        Tensor::from_vec(out, &[b, m, n])
    }

    /// Batched transpose-fused product `selfᵦ · otherᵦᵀ`:
    /// `[b,m,k] x [b,n,k] -> [b,m,n]`.
    pub fn bmm_nt(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.bmm_nt_into(other, &mut out);
        out
    }

    /// [`Tensor::bmm_nt`] into `out` (buffers reused; same GEMM engine).
    pub fn bmm_nt_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rank(), 3, "bmm_nt lhs must be rank 3, got {:?}", self.shape);
        assert_eq!(other.rank(), 3, "bmm_nt rhs must be rank 3, got {:?}", other.shape);
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, n, k2) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "bmm_nt batch dims differ: {:?} x {:?}", self.shape, other.shape);
        assert_eq!(k, k2, "bmm_nt shared dims differ: {:?} x {:?}", self.shape, other.shape);
        record_batched_dispatch(
            "tensor.bmm_nt.calls",
            "tensor.bmm_nt.elements",
            "tensor.bmm_nt.par",
            "tensor.bmm_nt.serial",
            b,
            m,
            k,
            n,
        );
        out.data.clear();
        out.data.resize(b * m * n, 0.0);
        out.reset_shape(&[b, m, n]);
        gemm_batched(
            &mut out.data,
            b,
            m,
            k,
            n,
            |bi| MatRef::normal(&self.data[bi * m * k..(bi + 1) * m * k], k),
            |bi| MatRef::transposed(&other.data[bi * n * k..(bi + 1) * n * k], k),
        );
    }

    /// Batch-summed transpose-fused product `Σᵦ selfᵦ · otherᵦᵀ`:
    /// `[b,m,j] x [b,l,j] -> [m,l]`.
    ///
    /// The broadcast-left gradient `Σᵦ gyᵦ · Xᵦᵀ` as one accumulation —
    /// no `[b,m,l]` intermediate, no separate sum pass. Batches share the
    /// output, so they run serially; each per-batch GEMM may parallelize.
    pub fn bmm_nt_reduce(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 3, "bmm_nt_reduce lhs must be rank 3, got {:?}", self.shape);
        assert_eq!(other.rank(), 3, "bmm_nt_reduce rhs must be rank 3, got {:?}", other.shape);
        let (b, m, j) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, l, j2) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "bmm_nt_reduce batch dims differ: {:?} x {:?}", self.shape, other.shape);
        assert_eq!(j, j2, "bmm_nt_reduce shared dims differ: {:?} x {:?}", self.shape, other.shape);
        record_dispatch(
            "tensor.bmm_nt_reduce.calls",
            "tensor.bmm_nt_reduce.elements",
            path_label("tensor.bmm_nt_reduce.par", "tensor.bmm_nt_reduce.serial", m * l * j),
            m * l,
        );
        let mut out = vec![0.0f32; m * l];
        for bi in 0..b {
            let a = MatRef::normal(&self.data[bi * m * j..(bi + 1) * m * j], j);
            let bt = MatRef::transposed(&other.data[bi * l * j..(bi + 1) * l * j], j);
            gemm(&mut out, a, bt, m, j, l, true);
        }
        Tensor::from_vec(out, &[m, l])
    }

    /// Batched product with a shared left matrix: `[m,k] x [b,k,n] -> [b,m,n]`.
    ///
    /// This is the graph-convolution pattern `A · Xᵦ` where the adjacency is
    /// shared across the batch. Batches fork to rayon when the summed work
    /// is large enough.
    pub fn matmul_broadcast_left(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_broadcast_left_into(other, &mut out);
        out
    }

    /// [`Tensor::matmul_broadcast_left`] into `out` (buffers reused; same
    /// GEMM engine).
    pub fn matmul_broadcast_left_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "lhs must be rank 2, got {:?}", self.shape);
        assert_eq!(other.rank(), 3, "rhs must be rank 3, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (b, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(k, k2, "inner dims differ: {:?} x {:?}", self.shape, other.shape);
        record_batched_dispatch(
            "tensor.mm_bcast_left.calls",
            "tensor.mm_bcast_left.elements",
            "tensor.mm_bcast_left.par",
            "tensor.mm_bcast_left.serial",
            b,
            m,
            k,
            n,
        );
        out.data.clear();
        out.data.resize(b * m * n, 0.0);
        out.reset_shape(&[b, m, n]);
        gemm_batched(
            &mut out.data,
            b,
            m,
            k,
            n,
            |_| MatRef::normal(&self.data, k),
            |bi| MatRef::normal(&other.data[bi * k * n..(bi + 1) * k * n], n),
        );
    }

    /// Transpose-fused broadcast-left: `selfᵀ · otherᵦ` with `self` `[m,k]`
    /// read in transposed order, `[m,k] x [b,m,n] -> [b,k,n]`.
    ///
    /// The broadcast-left input gradient `Aᵀ · gyᵦ` without materializing
    /// `Aᵀ`.
    pub fn matmul_broadcast_left_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "lhs must be rank 2, got {:?}", self.shape);
        assert_eq!(other.rank(), 3, "rhs must be rank 3, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (b, m2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(m, m2, "shared dims differ: {:?}ᵀ x {:?}", self.shape, other.shape);
        record_batched_dispatch(
            "tensor.mm_bcast_left_tn.calls",
            "tensor.mm_bcast_left_tn.elements",
            "tensor.mm_bcast_left_tn.par",
            "tensor.mm_bcast_left_tn.serial",
            b,
            k,
            m,
            n,
        );
        let mut out = vec![0.0f32; b * k * n];
        gemm_batched(
            &mut out,
            b,
            k,
            m,
            n,
            |_| MatRef::transposed(&self.data, k),
            |bi| MatRef::normal(&other.data[bi * m * n..(bi + 1) * m * n], n),
        );
        Tensor::from_vec(out, &[b, k, n])
    }

    /// Product with a shared right matrix: `[..., k] x [k,n] -> [..., n]`
    /// for any lhs rank ≥ 2.
    ///
    /// This is the shared-filter pattern `Xᵦ · W`: one weight matrix applied
    /// across all leading axes. Contiguous row-major layout means the
    /// leading axes fold into a single `[Σ·, k]` GEMM — no reshape copy, no
    /// input clone.
    pub fn matmul_broadcast_right(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_broadcast_right_into(other, &mut out);
        out
    }

    /// [`Tensor::matmul_broadcast_right`] into `out` (buffers reused; same
    /// GEMM engine).
    pub fn matmul_broadcast_right_into(&self, other: &Tensor, out: &mut Tensor) {
        assert!(self.rank() >= 2, "lhs must be rank >= 2, got {:?}", self.shape);
        assert_eq!(other.rank(), 2, "rhs must be rank 2, got {:?}", other.shape);
        assert!(self.rank() <= MAX_RANK, "lhs rank {} exceeds {MAX_RANK}", self.rank());
        let k = *self.shape.last().unwrap();
        assert_eq!(k, other.shape[0], "inner dims differ: {:?} x {:?}", self.shape, other.shape);
        let n = other.shape[1];
        let rows: usize = self.shape[..self.rank() - 1].iter().product();
        record_dispatch(
            "tensor.mm_bcast_right.calls",
            "tensor.mm_bcast_right.elements",
            path_label("tensor.mm_bcast_right.par", "tensor.mm_bcast_right.serial", rows * n * k),
            rows * n,
        );
        let mut shape = [0usize; MAX_RANK];
        let out_rank = self.rank();
        shape[..out_rank - 1].copy_from_slice(&self.shape[..out_rank - 1]);
        shape[out_rank - 1] = n;
        out.data.clear();
        out.data.resize(rows * n, 0.0);
        out.reset_shape(&shape[..out_rank]);
        gemm(
            &mut out.data,
            MatRef::normal(&self.data, k),
            MatRef::normal(&other.data, n),
            rows,
            k,
            n,
            true,
        );
    }

    /// Transpose-fused shared-right product `self · otherᵀ`:
    /// `[..., n] x [k,n] -> [..., k]` for any lhs rank ≥ 2.
    ///
    /// The shared-filter input gradient `gy · Wᵀ` without materializing
    /// `Wᵀ`.
    pub fn matmul_broadcast_right_nt(&self, other: &Tensor) -> Tensor {
        assert!(self.rank() >= 2, "lhs must be rank >= 2, got {:?}", self.shape);
        assert_eq!(other.rank(), 2, "rhs must be rank 2, got {:?}", other.shape);
        let n = *self.shape.last().unwrap();
        let (k, n2) = (other.shape[0], other.shape[1]);
        assert_eq!(n, n2, "shared dims differ: {:?} x {:?}ᵀ", self.shape, other.shape);
        let rows: usize = self.shape[..self.rank() - 1].iter().product();
        record_dispatch(
            "tensor.mm_bcast_right_nt.calls",
            "tensor.mm_bcast_right_nt.elements",
            path_label(
                "tensor.mm_bcast_right_nt.par",
                "tensor.mm_bcast_right_nt.serial",
                rows * n * k,
            ),
            rows * k,
        );
        let mut out = vec![0.0f32; rows * k];
        let b = MatRef::transposed(&other.data, n);
        gemm(&mut out, MatRef::normal(&self.data, n), b, rows, n, k, true);
        let mut shape = self.shape[..self.rank() - 1].to_vec();
        shape.push(k);
        Tensor::from_vec(out, &shape)
    }

    /// Leading-axes-folded transpose-fused product `foldᵀ(self) · fold(other)`:
    /// `[..., k] x [..., n] -> [k,n]` where both operands share identical
    /// leading axes.
    ///
    /// The shared-filter weight gradient `Xᵀ_flat · gy_flat` as one GEMM —
    /// no reshape copies, no transpose materialization.
    pub fn matmul_tn_flat(&self, other: &Tensor) -> Tensor {
        assert!(self.rank() >= 2, "lhs must be rank >= 2, got {:?}", self.shape);
        assert_eq!(
            self.shape[..self.rank() - 1],
            other.shape[..other.rank() - 1],
            "leading axes differ: {:?} x {:?}",
            self.shape,
            other.shape
        );
        let k = *self.shape.last().unwrap();
        let n = *other.shape.last().unwrap();
        let rows: usize = self.shape[..self.rank() - 1].iter().product();
        record_dispatch(
            "tensor.mm_tn_flat.calls",
            "tensor.mm_tn_flat.elements",
            path_label("tensor.mm_tn_flat.par", "tensor.mm_tn_flat.serial", rows * n * k),
            k * n,
        );
        let mut out = vec![0.0f32; k * n];
        let a = MatRef::transposed(&self.data, k);
        gemm(&mut out, a, MatRef::normal(&other.data, n), k, rows, n, true);
        Tensor::from_vec(out, &[k, n])
    }

    /// Dot product of two rank-1 tensors.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.rank(), 1, "dot expects rank-1 operands");
        assert_eq!(self.shape, other.shape, "dot length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Matrix power `self^p` for a square rank-2 tensor (`p = 0` gives the
    /// identity). Used to build k-hop graph supports.
    pub fn matrix_power(&self, p: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "matrix_power expects a matrix");
        assert_eq!(self.shape[0], self.shape[1], "matrix_power expects a square matrix");
        let n = self.shape[0];
        let mut acc = Tensor::eye(n);
        for _ in 0..p {
            acc = acc.matmul(self);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unblocked, unpacked reference: the plain triple loop every kernel
    /// variant must agree with.
    fn reference_mm(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    out[i * n + j] += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Deterministic small-integer fill: products stay exactly representable
    /// in f32, so blocked-vs-reference comparisons can be exact.
    fn int_tensor(shape: &[usize], seed: usize) -> Tensor {
        let numel: usize = shape.iter().product();
        let data = (0..numel).map(|v| ((v * 7 + seed) % 5) as f32 - 2.0).collect();
        Tensor::from_vec(data, shape)
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        assert_eq!(a.matmul(&Tensor::eye(3)).data(), a.data());
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_rows(&[vec![1.0, 0.0, 2.0]]);
        let b = Tensor::from_rows(&[vec![1.0, 1.0], vec![9.0, 9.0], vec![2.0, 3.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[1, 2]);
        assert_eq!(c.data(), &[5.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_rejects_mismatched_inner() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 5]));
    }

    #[test]
    fn blocked_path_matches_reference_on_odd_shapes() {
        // Shapes chosen to straddle every blocking boundary: ragged MR/NR
        // tails, multiple KC slices, multiple MC row blocks, NC slab edges.
        for &(m, k, n) in &[
            (1, 1, 1),
            (1, 17, 1),
            (5, 3, 129),
            (67, 261, 17),
            (63, 64, 65),
            (130, 300, 11),
            (64, 257, 513),
        ] {
            let a = int_tensor(&[m, k], 1);
            let b = int_tensor(&[k, n], 2);
            let got = a.matmul(&b);
            let want = reference_mm(&a, &b);
            assert_eq!(got.data(), want.data(), "mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn tn_and_nt_match_materialized_transpose() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (31, 67, 13), (67, 129, 65)] {
            let a = int_tensor(&[m, k], 3);
            let b = int_tensor(&[k, n], 4);
            let want = reference_mm(&a, &b);
            // tn: feed aᵀ stored as [k,m].
            let at = a.transpose();
            assert_eq!(at.matmul_tn(&b).data(), want.data(), "tn mismatch at ({m},{k},{n})");
            // nt: feed bᵀ stored as [n,k].
            let bt = b.transpose();
            assert_eq!(a.matmul_nt(&bt).data(), want.data(), "nt mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn bmm_independent_batches() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], &[2, 2, 2]);
        let c = a.bmm(&b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(&c.data()[..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&c.data()[4..], &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn bmm_tn_nt_match_transpose_batched() {
        let (b, m, k, n) = (3, 5, 7, 4);
        let a = int_tensor(&[b, m, k], 5);
        let x = int_tensor(&[b, k, n], 6);
        let want = a.bmm(&x);
        assert_eq!(a.transpose_batched().bmm_tn(&x).data(), want.data());
        assert_eq!(a.bmm_nt(&x.transpose_batched()).data(), want.data());
    }

    #[test]
    fn bmm_nt_reduce_matches_bmm_then_sum() {
        let (b, m, n, l) = (4, 5, 6, 3);
        let gy = int_tensor(&[b, m, n], 7);
        let x = int_tensor(&[b, l, n], 8);
        let want = gy.bmm_nt(&x).sum_axis(0);
        assert_eq!(gy.bmm_nt_reduce(&x).data(), want.data());
    }

    #[test]
    fn broadcast_left_equals_per_batch_matmul() {
        let a = Tensor::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]); // swap rows
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[2, 2, 2]);
        let y = a.matmul_broadcast_left(&x);
        assert_eq!(&y.data()[..4], &[3.0, 4.0, 1.0, 2.0]);
        assert_eq!(&y.data()[4..], &[7.0, 8.0, 5.0, 6.0]);
    }

    #[test]
    fn broadcast_left_tn_matches_transposed_broadcast() {
        let (b, m, k, n) = (3, 6, 4, 5);
        let a = int_tensor(&[m, k], 9);
        let gy = int_tensor(&[b, m, n], 10);
        let want = a.transpose().matmul_broadcast_left(&gy);
        assert_eq!(a.matmul_broadcast_left_tn(&gy).data(), want.data());
    }

    #[test]
    fn broadcast_right_equals_flattened_matmul() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 3, 2]);
        let w = Tensor::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 1.0, 2.0]]);
        let y = x.matmul_broadcast_right(&w);
        assert_eq!(y.shape(), &[2, 3, 3]);
        // first row: [0,1] @ w = [0, 1, 2]
        assert_eq!(&y.data()[..3], &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn broadcast_right_folds_any_leading_rank() {
        let x = int_tensor(&[2, 3, 4, 5], 11);
        let w = int_tensor(&[5, 6], 12);
        let y = x.matmul_broadcast_right(&w);
        assert_eq!(y.shape(), &[2, 3, 4, 6]);
        let flat = x.reshape(&[24, 5]).matmul(&w);
        assert_eq!(y.data(), flat.data());
    }

    #[test]
    fn broadcast_right_nt_matches_materialized_transpose() {
        let gy = int_tensor(&[2, 3, 6], 13);
        let w = int_tensor(&[5, 6], 14);
        let want = gy.matmul_broadcast_right(&w.transpose());
        assert_eq!(gy.matmul_broadcast_right_nt(&w).data(), want.data());
    }

    #[test]
    fn tn_flat_matches_reshape_transpose_matmul() {
        let x = int_tensor(&[2, 3, 5], 15);
        let gy = int_tensor(&[2, 3, 4], 16);
        let want = x.reshape(&[6, 5]).transpose().matmul(&gy.reshape(&[6, 4]));
        assert_eq!(x.matmul_tn_flat(&gy).data(), want.data());
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn matrix_power_zero_is_identity() {
        let a = Tensor::from_rows(&[vec![2.0, 0.0], vec![0.0, 2.0]]);
        assert!(a.matrix_power(0).allclose(&Tensor::eye(2), 0.0));
        assert!(a.matrix_power(3).allclose(&(&Tensor::eye(2) * 8.0), 1e-5));
    }

    #[test]
    fn pack_a_layout_strips_and_zero_pads() {
        // 5x3 source packed with mr = 4, kc = 3: strip 0 interleaves rows
        // 0..4 by depth; strip 1 holds row 4 plus three zero-padded rows.
        let data: Vec<f32> = (0..15).map(|v| v as f32).collect();
        let a = MatRef::normal(&data, 3);
        let mut buf = vec![f32::NAN; 3 * 8];
        pack_a(&mut buf, a, 0, 0, 5, 3, 4);
        // Strip 0, depth 0: column 0 of rows 0..4.
        assert_eq!(&buf[0..4], &[0.0, 3.0, 6.0, 9.0]);
        // Strip 0, depth 2: column 2 of rows 0..4.
        assert_eq!(&buf[8..12], &[2.0, 5.0, 8.0, 11.0]);
        // Strip 1, depth 0: row 4 then zero padding — never stale NaNs.
        assert_eq!(&buf[12..16], &[12.0, 0.0, 0.0, 0.0]);
        assert!(buf[12..].iter().all(|v| !v.is_nan()));
    }

    #[test]
    fn pack_a_transposed_view_reads_swapped_strides() {
        // A [3, 2] buffer viewed as its [2, 3] transpose must pack the
        // logical (not storage) rows.
        let data: Vec<f32> = (0..6).map(|v| v as f32).collect();
        let at = MatRef::transposed(&data, 2);
        let mut buf = vec![0.0f32; 3 * 2];
        pack_a(&mut buf, at, 0, 0, 2, 3, 2);
        // Logical row 0 = storage column 0 = [0, 2, 4]; row 1 = [1, 3, 5].
        assert_eq!(buf, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn pack_b_layout_strips_and_zero_pads() {
        // 2x5 source packed with nr = 4, kc = 2: strip 0 holds columns
        // 0..4, strip 1 holds column 4 plus three zero-padded columns.
        let data: Vec<f32> = (0..10).map(|v| v as f32).collect();
        let b = MatRef::normal(&data, 5);
        let mut buf = vec![f32::NAN; 2 * 8];
        pack_b(&mut buf, b, 0, 0, 2, 5, 4);
        assert_eq!(&buf[0..4], &[0.0, 1.0, 2.0, 3.0]); // depth 0, cols 0..4
        assert_eq!(&buf[4..8], &[5.0, 6.0, 7.0, 8.0]); // depth 1, cols 0..4
        assert_eq!(&buf[8..12], &[4.0, 0.0, 0.0, 0.0]); // strip 1, depth 0
        assert_eq!(&buf[12..16], &[9.0, 0.0, 0.0, 0.0]); // strip 1, depth 1
    }

    #[test]
    fn every_kernel_drives_blocked_engine_to_reference() {
        // The same odd/ragged shape sweep as the public-API test, but
        // forced through each dispatch variant the host can run, serial
        // and parallel. Integer values keep comparisons bitwise even for
        // FMA kernels.
        for &(m, k, n) in &[(1, 1, 1), (5, 3, 17), (7, 19, 23), (67, 129, 65)] {
            let a = int_tensor(&[m, k], 1);
            let b = int_tensor(&[k, n], 2);
            let want = reference_mm(&a, &b);
            for kern in crate::kernel::available_kernels() {
                for parallel in [false, true] {
                    let got = matmul_with_kernel(&a, &b, kern, parallel);
                    assert_eq!(
                        got.data(),
                        want.data(),
                        "kernel {} mismatch at ({m},{k},{n}) parallel={parallel}",
                        kern.name()
                    );
                }
            }
        }
    }

    #[test]
    fn wide_output_slab_parallel_matches_reference() {
        // col_slabs (3) > row_blocks (1) with work >= PAR_MIN_WORK forces
        // the column-slab fan-out; slabs must tile the output without
        // overlap or gaps.
        let (m, k, n) = (32, 64, 1200);
        assert!(m * k * n >= PAR_MIN_WORK);
        assert!(n.div_ceil(NC) > m.div_ceil(MC));
        let a = int_tensor(&[m, k], 3);
        let b = int_tensor(&[k, n], 4);
        assert_eq!(a.matmul(&b).data(), reference_mm(&a, &b).data());
    }

    #[test]
    fn large_matmul_parallel_path_matches_serial() {
        // Force the rayon path (work >= PAR_MIN_WORK) and compare against
        // the identity.
        let m = 160;
        let a = Tensor::from_vec((0..m * m).map(|v| (v % 7) as f32 * 0.25).collect(), &[m, m]);
        let b = Tensor::eye(m);
        assert!(a.matmul(&b).allclose(&a, 1e-5));
    }

    #[test]
    fn parallel_bmm_matches_serial_batches() {
        // Summed work clears PAR_MIN_WORK while a single batch does not, so
        // this exercises the batch-parallel fork.
        let (b, m, k, n) = (16, 40, 41, 42);
        assert!(batch_parallel(b, m, k, n));
        assert!(m * k * n < PAR_MIN_WORK);
        let a = int_tensor(&[b, m, k], 17);
        let x = int_tensor(&[b, k, n], 18);
        let got = a.bmm(&x);
        for bi in 0..b {
            let ai = Tensor::from_vec(a.data()[bi * m * k..(bi + 1) * m * k].to_vec(), &[m, k]);
            let xi = Tensor::from_vec(x.data()[bi * k * n..(bi + 1) * k * n].to_vec(), &[k, n]);
            let want = reference_mm(&ai, &xi);
            assert_eq!(&got.data()[bi * m * n..(bi + 1) * m * n], want.data(), "batch {bi}");
        }
    }
}
