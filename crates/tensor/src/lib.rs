//! # enhancenet-tensor
//!
//! Dense, contiguous, row-major `f32` tensor substrate used by every other
//! crate in the EnhanceNet reproduction.
//!
//! The paper's models operate on small-to-medium tensors (entities `N ≤ 207`,
//! hidden sizes `C' ≤ 64`, horizons `H = F = 12`), so this crate favours a
//! simple, predictable representation — a `Vec<f32>` plus a shape — over
//! stride/view machinery. Transposes and slices materialize *except* inside
//! matrix products: the blocked GEMM engine in [`mod@matmul`] reads either
//! operand in transposed order through its `_tn`/`_nt` entry points, packs
//! operand panels into buffers recycled by the thread-local [`scratch`]
//! pool, runs them through the SIMD micro-kernel selected at startup by
//! [`mod@kernel`] (AVX2+FMA, NEON, or the scalar fallback —
//! `ENHANCENET_FORCE_SCALAR=1` pins the latter), and parallelizes with
//! rayon when the arithmetic work is large enough to amortize the fork.
//!
//! ## Quick start
//!
//! ```
//! use enhancenet_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```
//!
//! ## Conventions
//!
//! * Shapes are `&[usize]`; rank-0 (scalar) tensors have shape `&[]` and one
//!   element.
//! * Binary elementwise operations broadcast with NumPy semantics.
//! * Shape errors panic with a descriptive message; this mirrors the
//!   behaviour of mainstream tensor libraries and keeps hot paths free of
//!   `Result` plumbing. The offending shapes are always included in the
//!   panic message.

mod init;
pub mod kernel;
mod manip;
pub mod matmul;
mod ops;
mod reduce;
pub mod scratch;
mod shape;
pub mod sparse;
mod tensor;

pub use init::TensorRng;
pub use kernel::MicroKernel;
pub use scratch::with_scratch;
pub use shape::{broadcast_shapes, Shape};
pub use sparse::{CsrMatrix, TopkPattern};
pub use tensor::Tensor;

/// Absolute tolerance used by [`Tensor::allclose`] and the test-suites of the
/// downstream crates.
pub const DEFAULT_ATOL: f32 = 1e-5;
