//! Shape arithmetic: element counts, row-major strides, and NumPy-style
//! broadcasting.

/// Lightweight helper around a tensor shape (`&[usize]`).
///
/// Most code works with raw `&[usize]` slices; `Shape` collects the shared
/// arithmetic so it is implemented (and tested) exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Total number of elements described by the shape. The empty shape
    /// (rank 0, a scalar) has one element.
    pub fn numel(dims: &[usize]) -> usize {
        dims.iter().product()
    }

    /// Row-major (C-order) strides for `dims`.
    ///
    /// `strides[i]` is the linear-index distance between consecutive elements
    /// along axis `i`.
    pub fn strides(dims: &[usize]) -> Vec<usize> {
        let mut s = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * dims[i + 1];
        }
        s
    }

    /// Converts a multi-dimensional index to a linear offset.
    pub fn offset(dims: &[usize], idx: &[usize]) -> usize {
        debug_assert_eq!(dims.len(), idx.len());
        let strides = Self::strides(dims);
        idx.iter().zip(&strides).map(|(i, s)| i * s).sum()
    }
}

/// Computes the NumPy broadcast of two shapes.
///
/// Shapes are aligned at their trailing axes; each pair of axis lengths must
/// be equal or one of them must be `1`.
///
/// # Panics
///
/// Panics when the shapes are not broadcast-compatible.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Vec<usize> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() { 1 } else { a[i - (rank - a.len())] };
        let db = if i < rank - b.len() { 1 } else { b[i - (rank - b.len())] };
        out[i] = match (da, db) {
            (x, y) if x == y => x,
            (1, y) => y,
            (x, 1) => x,
            _ => panic!("shapes {a:?} and {b:?} are not broadcast-compatible"),
        };
    }
    out
}

/// Upper bound on tensor rank for the stack-allocated index math used by
/// the hot (allocation-free) execution paths.
pub(crate) const MAX_RANK: usize = 8;

/// Array-backed [`broadcast_shapes`]: writes the broadcast shape into a
/// stack buffer and returns its rank. Same semantics (and panic message),
/// but allocation-free so warm plan executions stay off the heap.
pub(crate) fn broadcast_shapes_array(
    a: &[usize],
    b: &[usize],
    out: &mut [usize; MAX_RANK],
) -> usize {
    let rank = a.len().max(b.len());
    assert!(rank <= MAX_RANK, "broadcast rank {rank} exceeds {MAX_RANK}");
    for i in 0..rank {
        let da = if i < rank - a.len() { 1 } else { a[i - (rank - a.len())] };
        let db = if i < rank - b.len() { 1 } else { b[i - (rank - b.len())] };
        out[i] = match (da, db) {
            (x, y) if x == y => x,
            (1, y) => y,
            (x, 1) => x,
            _ => panic!("shapes {a:?} and {b:?} are not broadcast-compatible"),
        };
    }
    rank
}

/// Strides of `src` viewed as the broadcast shape `dst` — broadcast axes get
/// stride 0 so the same element is revisited. Stack-allocated so the hot
/// execution paths stay off the heap; `dst` axes beyond `MAX_RANK` are
/// rejected by the caller (via [`broadcast_shapes_array`]).
pub(crate) fn broadcast_strides_array(src: &[usize], dst: &[usize], out: &mut [usize; MAX_RANK]) {
    let mut src_strides = [1usize; MAX_RANK];
    for i in (0..src.len().saturating_sub(1)).rev() {
        src_strides[i] = src_strides[i + 1] * src[i + 1];
    }
    let pad = dst.len() - src.len();
    for i in 0..dst.len() {
        if i < pad {
            out[i] = 0;
        } else {
            let d = src[i - pad];
            out[i] = if d == 1 { 0 } else { src_strides[i - pad] };
        }
    }
}

/// Normalizes a possibly-negative axis (Python semantics) into `0..rank`.
///
/// # Panics
///
/// Panics when the axis is out of range for the rank.
pub(crate) fn normalize_axis(axis: isize, rank: usize) -> usize {
    let a = if axis < 0 { axis + rank as isize } else { axis };
    assert!((0..rank as isize).contains(&a), "axis {axis} out of range for rank {rank}");
    a as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_scalar_is_one() {
        assert_eq!(Shape::numel(&[]), 1);
    }

    #[test]
    fn numel_of_matrix() {
        assert_eq!(Shape::numel(&[3, 4]), 12);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(Shape::strides(&[5]), vec![1]);
        assert_eq!(Shape::strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn offset_matches_manual_math() {
        assert_eq!(Shape::offset(&[2, 3, 4], &[1, 2, 3]), 12 + 8 + 3);
    }

    #[test]
    fn broadcast_equal_shapes() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]), vec![2, 3]);
    }

    #[test]
    fn broadcast_scalar_and_matrix() {
        assert_eq!(broadcast_shapes(&[], &[2, 3]), vec![2, 3]);
    }

    #[test]
    fn broadcast_row_and_column() {
        assert_eq!(broadcast_shapes(&[3, 1], &[1, 4]), vec![3, 4]);
    }

    #[test]
    fn broadcast_prepends_axes() {
        assert_eq!(broadcast_shapes(&[4], &[2, 3, 4]), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "not broadcast-compatible")]
    fn broadcast_incompatible_panics() {
        broadcast_shapes(&[2, 3], &[4, 3]);
    }

    #[test]
    fn broadcast_strides_zero_on_expanded_axes() {
        let mut out = [0usize; MAX_RANK];
        broadcast_strides_array(&[3, 1], &[3, 4], &mut out);
        assert_eq!(&out[..2], &[1, 0]);
        broadcast_strides_array(&[4], &[2, 3, 4], &mut out);
        assert_eq!(&out[..3], &[0, 0, 1]);
    }

    #[test]
    fn normalize_axis_handles_negative() {
        assert_eq!(normalize_axis(-1, 3), 2);
        assert_eq!(normalize_axis(0, 3), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn normalize_axis_rejects_out_of_range() {
        normalize_axis(3, 3);
    }
}
