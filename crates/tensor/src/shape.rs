//! Shape arithmetic: element counts, row-major strides, and NumPy-style
//! broadcasting.

/// Lightweight helper around a tensor shape (`&[usize]`).
///
/// Most code works with raw `&[usize]` slices; `Shape` collects the shared
/// arithmetic so it is implemented (and tested) exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Total number of elements described by the shape. The empty shape
    /// (rank 0, a scalar) has one element.
    pub fn numel(dims: &[usize]) -> usize {
        dims.iter().product()
    }

    /// Row-major (C-order) strides for `dims`.
    ///
    /// `strides[i]` is the linear-index distance between consecutive elements
    /// along axis `i`.
    pub fn strides(dims: &[usize]) -> Vec<usize> {
        let mut s = vec![1usize; dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * dims[i + 1];
        }
        s
    }

    /// Converts a multi-dimensional index to a linear offset.
    pub fn offset(dims: &[usize], idx: &[usize]) -> usize {
        debug_assert_eq!(dims.len(), idx.len());
        let strides = Self::strides(dims);
        idx.iter().zip(&strides).map(|(i, s)| i * s).sum()
    }
}

/// Computes the NumPy broadcast of two shapes.
///
/// Shapes are aligned at their trailing axes; each pair of axis lengths must
/// be equal or one of them must be `1`.
///
/// # Panics
///
/// Panics when the shapes are not broadcast-compatible.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Vec<usize> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() { 1 } else { a[i - (rank - a.len())] };
        let db = if i < rank - b.len() { 1 } else { b[i - (rank - b.len())] };
        out[i] = match (da, db) {
            (x, y) if x == y => x,
            (1, y) => y,
            (x, 1) => x,
            _ => panic!("shapes {a:?} and {b:?} are not broadcast-compatible"),
        };
    }
    out
}

/// Strides of `src` viewed as the broadcast shape `dst` — broadcast axes get
/// stride 0 so the same element is revisited.
pub(crate) fn broadcast_strides(src: &[usize], dst: &[usize]) -> Vec<usize> {
    let src_strides = Shape::strides(src);
    let pad = dst.len() - src.len();
    let mut out = vec![0usize; dst.len()];
    for i in 0..dst.len() {
        if i < pad {
            out[i] = 0;
        } else {
            let d = src[i - pad];
            out[i] = if d == 1 { 0 } else { src_strides[i - pad] };
        }
    }
    out
}

/// Normalizes a possibly-negative axis (Python semantics) into `0..rank`.
///
/// # Panics
///
/// Panics when the axis is out of range for the rank.
pub(crate) fn normalize_axis(axis: isize, rank: usize) -> usize {
    let a = if axis < 0 { axis + rank as isize } else { axis };
    assert!((0..rank as isize).contains(&a), "axis {axis} out of range for rank {rank}");
    a as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_scalar_is_one() {
        assert_eq!(Shape::numel(&[]), 1);
    }

    #[test]
    fn numel_of_matrix() {
        assert_eq!(Shape::numel(&[3, 4]), 12);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(Shape::strides(&[5]), vec![1]);
        assert_eq!(Shape::strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn offset_matches_manual_math() {
        assert_eq!(Shape::offset(&[2, 3, 4], &[1, 2, 3]), 12 + 8 + 3);
    }

    #[test]
    fn broadcast_equal_shapes() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]), vec![2, 3]);
    }

    #[test]
    fn broadcast_scalar_and_matrix() {
        assert_eq!(broadcast_shapes(&[], &[2, 3]), vec![2, 3]);
    }

    #[test]
    fn broadcast_row_and_column() {
        assert_eq!(broadcast_shapes(&[3, 1], &[1, 4]), vec![3, 4]);
    }

    #[test]
    fn broadcast_prepends_axes() {
        assert_eq!(broadcast_shapes(&[4], &[2, 3, 4]), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "not broadcast-compatible")]
    fn broadcast_incompatible_panics() {
        broadcast_shapes(&[2, 3], &[4, 3]);
    }

    #[test]
    fn broadcast_strides_zero_on_expanded_axes() {
        assert_eq!(broadcast_strides(&[3, 1], &[3, 4]), vec![1, 0]);
        assert_eq!(broadcast_strides(&[4], &[2, 3, 4]), vec![0, 0, 1]);
    }

    #[test]
    fn normalize_axis_handles_negative() {
        assert_eq!(normalize_axis(-1, 3), 2);
        assert_eq!(normalize_axis(0, 3), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn normalize_axis_rejects_out_of_range() {
        normalize_axis(3, 3);
    }
}
