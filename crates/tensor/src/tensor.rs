//! The [`Tensor`] type: a contiguous, row-major `f32` array with a shape.

use crate::shape::Shape;
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// See the [crate documentation](crate) for design rationale and conventions.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    pub(crate) shape: Vec<usize>,
    pub(crate) data: Vec<f32>,
}

/// The default tensor is an *empty placeholder* (no shape, no elements):
/// it allocates nothing, so it serves as the seed for `*_into` output
/// buffers and as the `std::mem::take` stand-in on allocation-free paths.
impl Default for Tensor {
    fn default() -> Self {
        Self { shape: Vec::new(), data: Vec::new() }
    }
}

impl Tensor {
    // ---------------------------------------------------------------- ctor

    /// Builds a tensor from a flat row-major buffer and a shape.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` does not match the element count of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            Shape::numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self { shape: shape.to_vec(), data }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self { shape: shape.to_vec(), data: vec![value; Shape::numel(shape)] }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// A tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Self { shape: vec![], data: vec![value] }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// `[0, 1, ..., n-1]` as a rank-1 tensor.
    pub fn arange(n: usize) -> Self {
        Self { shape: vec![n], data: (0..n).map(|i| i as f32).collect() }
    }

    /// Builds a rank-2 tensor from nested rows.
    ///
    /// # Panics
    ///
    /// Panics on ragged rows.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows: expected {c} columns, got {}", row.len());
            data.extend_from_slice(row);
        }
        Self { shape: vec![r, c], data }
    }

    // ------------------------------------------------------------ accessors

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The rank (number of axes).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics when the index rank does not match or is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f32 {
        assert_eq!(
            idx.len(),
            self.rank(),
            "index rank {} vs tensor rank {}",
            idx.len(),
            self.rank()
        );
        for (i, (&ix, &d)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(ix < d, "index {ix} out of bounds for axis {i} with size {d}");
        }
        self.data[Shape::offset(&self.shape, idx)]
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        assert_eq!(idx.len(), self.rank());
        let off = Shape::offset(&self.shape, idx);
        self.data[off] = value;
    }

    /// The single value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() on tensor with shape {:?}", self.shape);
        self.data[0]
    }

    // ------------------------------------------------------- buffer reuse

    /// An empty placeholder whose buffer already has room for `capacity`
    /// elements. Used to preallocate arena slots so the first execution of a
    /// compiled plan is as allocation-free as the steady state.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { shape: Vec::new(), data: Vec::with_capacity(capacity) }
    }

    /// Rewrites `self.shape` without touching the data buffer. Keeps the
    /// shape vector's capacity, so warm `*_into` calls never reallocate it.
    pub(crate) fn reset_shape(&mut self, dims: &[usize]) {
        self.shape.clear();
        self.shape.extend_from_slice(dims);
    }

    /// Clears the data buffer and re-applies `dims` (capacity retained).
    /// Callers fill the buffer afterwards; every `*_into` op starts here.
    pub(crate) fn reset_for(&mut self, dims: &[usize]) {
        self.data.clear();
        self.reset_shape(dims);
    }

    /// Overwrites `self` with a copy of `src`, reusing the existing buffers.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.copy_from_with_shape(&src.shape, &src.data);
    }

    /// Overwrites `self` with `data` reinterpreted under `shape`, reusing
    /// the existing buffers (a reshaping copy).
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` does not match the element count of `shape`.
    pub fn copy_from_with_shape(&mut self, shape: &[usize], data: &[f32]) {
        assert_eq!(
            data.len(),
            Shape::numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        self.reset_for(shape);
        self.data.extend_from_slice(data);
    }

    /// Overwrites `self` with a rank-0 scalar, reusing the buffers.
    pub fn set_scalar(&mut self, value: f32) {
        self.reset_for(&[]);
        self.data.push(value);
    }

    // ------------------------------------------------------------ utilities

    /// True when every element of `self` is within `atol` of the matching
    /// element of `other` and the shapes are identical.
    pub fn allclose(&self, other: &Tensor, atol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= atol || (a.is_nan() && b.is_nan()))
    }

    /// True when any element is NaN or infinite. Used by the trainer to
    /// detect divergence.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Frobenius / L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = Tensor::default();
        self.map_into(f, &mut out);
        out
    }

    /// Applies `f` to every element, writing into `out` (buffers reused).
    /// [`Tensor::map`] delegates here, so the two are bitwise identical.
    pub fn map_into(&self, f: impl Fn(f32) -> f32, out: &mut Tensor) {
        out.reset_for(&self.shape);
        out.data.extend(self.data.iter().map(|&v| f(v)));
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch (no broadcasting; use the arithmetic ops for
    /// broadcast semantics).
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let mut out = Tensor::default();
        self.zip_with_into(other, f, &mut out);
        out
    }

    /// Combines two same-shaped tensors elementwise with `f`, writing into
    /// `out` (buffers reused). [`Tensor::zip_with`] delegates here.
    pub fn zip_with_into(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32, out: &mut Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "zip_with requires identical shapes: {:?} vs {:?}",
            self.shape, other.shape
        );
        out.reset_for(&self.shape);
        out.data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, .., {:.4}] (n={})",
                self.data[0],
                self.data[1],
                self.data[self.numel() - 1],
                self.numel()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.at(&[0, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_len() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[0, 0]), 1.0);
        assert_eq!(i.at(&[1, 0]), 0.0);
        assert_eq!(i.data().iter().sum::<f32>(), 3.0);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(4.25).item(), 4.25);
    }

    #[test]
    #[should_panic(expected = "item()")]
    fn item_rejects_multi_element() {
        Tensor::zeros(&[2]).item();
    }

    #[test]
    fn set_and_at() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 1], 7.0);
        assert_eq!(t.at(&[1, 1]), 7.0);
        assert_eq!(t.at(&[0, 1]), 0.0);
    }

    #[test]
    fn allclose_tolerates_small_differences() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0 + 1e-7, 2.0 - 1e-7], &[2]);
        assert!(a.allclose(&b, 1e-5));
        assert!(!a.allclose(&b, 1e-9));
    }

    #[test]
    fn allclose_requires_same_shape() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[1, 2]);
        assert!(!a.allclose(&b, 1.0));
    }

    #[test]
    fn from_rows_builds_matrix() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    fn norm_is_frobenius() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert!((t.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn has_non_finite_detects_nan_and_inf() {
        assert!(!Tensor::ones(&[3]).has_non_finite());
        assert!(Tensor::from_vec(vec![1.0, f32::NAN], &[2]).has_non_finite());
        assert!(Tensor::from_vec(vec![f32::INFINITY], &[1]).has_non_finite());
    }

    #[test]
    fn map_and_zip_with() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = a.map(|v| v * 10.0);
        assert_eq!(b.data(), &[10.0, 20.0]);
        let c = a.zip_with(&b, |x, y| y - x);
        assert_eq!(c.data(), &[9.0, 18.0]);
    }

    #[test]
    fn arange_counts_up() {
        assert_eq!(Tensor::arange(4).data(), &[0.0, 1.0, 2.0, 3.0]);
    }
}
