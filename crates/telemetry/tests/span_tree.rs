//! Cross-thread span-tree semantics: spans on different threads carry
//! distinct thread ids and independent depth counters, and the Chrome
//! trace export keeps them on separate rows. Runs as its own integration
//! binary so the process-global registry is not shared with other suites.

use std::time::Duration;

#[test]
fn threads_get_distinct_tids_and_independent_depths() {
    enhancenet_telemetry::reset();
    enhancenet_telemetry::set_enabled(true);

    let worker = std::thread::spawn(|| {
        let _outer = enhancenet_telemetry::span("tree.worker_outer");
        std::thread::sleep(Duration::from_millis(2));
        let _inner = enhancenet_telemetry::span("tree.worker_inner");
        std::thread::sleep(Duration::from_millis(1));
    });
    {
        let _outer = enhancenet_telemetry::span("tree.main_outer");
        std::thread::sleep(Duration::from_millis(2));
        let _inner = enhancenet_telemetry::span("tree.main_inner");
        std::thread::sleep(Duration::from_millis(1));
    }
    worker.join().expect("worker thread");
    enhancenet_telemetry::set_enabled(false);

    let spans = enhancenet_telemetry::span_records();
    assert_eq!(spans.len(), 4, "{spans:?}");
    let find = |label: &str| {
        spans.iter().find(|s| s.label == label).unwrap_or_else(|| panic!("{label} recorded"))
    };
    let main_outer = find("tree.main_outer");
    let main_inner = find("tree.main_inner");
    let worker_outer = find("tree.worker_outer");
    let worker_inner = find("tree.worker_inner");

    // Each thread nests independently from depth 0.
    assert_eq!(main_outer.depth, 0);
    assert_eq!(main_inner.depth, 1);
    assert_eq!(worker_outer.depth, 0);
    assert_eq!(worker_inner.depth, 1);

    // Same thread id within a thread, distinct ids across threads.
    assert_eq!(main_outer.tid, main_inner.tid);
    assert_eq!(worker_outer.tid, worker_inner.tid);
    assert_ne!(main_outer.tid, worker_outer.tid);

    // Span durations also aggregate into the flat timer table.
    for label in ["tree.main_outer", "tree.main_inner", "tree.worker_outer", "tree.worker_inner"] {
        let stat =
            enhancenet_telemetry::timer_stat(label).unwrap_or_else(|| panic!("{label} aggregated"));
        assert_eq!(stat.calls, 1);
        assert!(stat.total_ns > 0);
    }

    // The Chrome export carries both thread rows and both depth levels.
    let doc: serde_json::Value =
        serde_json::from_str(&enhancenet_telemetry::render_chrome_trace()).expect("trace parses");
    let events = doc["traceEvents"].as_array().expect("traceEvents");
    assert_eq!(events.len(), 4);
    let tids: std::collections::BTreeSet<u64> =
        events.iter().map(|e| e["tid"].as_u64().expect("tid")).collect();
    assert_eq!(tids.len(), 2, "two thread rows, got {tids:?}");
    let depths: std::collections::BTreeSet<u64> =
        events.iter().map(|e| e["args"]["depth"].as_u64().expect("depth")).collect();
    assert!(depths.contains(&0) && depths.contains(&1));

    enhancenet_telemetry::reset();
}
