//! Snapshot-consistency hammer: many writer threads slam counters, gauges,
//! and histograms while the main thread takes continuous snapshots. The
//! sharded store promises per-metric atomicity — a snapshot may land
//! between two metrics but never inside one — so:
//!
//! * counter values are **monotone** across successive snapshots;
//! * a snapshotted histogram is never **torn**: its bucket total always
//!   equals its `count`, and its `sum` stays consistent with `count`
//!   (mean within the observed value range);
//! * after every writer joins, totals are **exact** — nothing lost.
//!
//! Runs as its own integration binary because the metric store is
//! process-global.

use std::collections::BTreeMap;
use std::thread;

/// The metric store is process-global and the hammer test resets it;
/// serialize the tests in this binary so neither clears the other's state.
fn lock_tests() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    GUARD
        .get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

const WRITERS: usize = 4;
const PER_WRITER: u64 = 40_000;
const SHARED: &str = "hammer.counter.shared";
const HIST: &str = "hammer.latency";
const GAUGE: &str = "hammer.depth";
const PRIVATE: [&str; WRITERS] =
    ["hammer.counter.w0", "hammer.counter.w1", "hammer.counter.w2", "hammer.counter.w3"];

/// Histogram samples are powers of two in [1, 128]: mean stays in range
/// and every sample lands in a distinct, predictable bucket.
fn sample(i: u64) -> f64 {
    (1u64 << (i % 8)) as f64
}

#[test]
fn snapshots_under_concurrent_writes_are_never_torn() {
    let _g = lock_tests();
    enhancenet_telemetry::reset();
    enhancenet_telemetry::set_enabled(true);

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            thread::spawn(move || {
                for i in 0..PER_WRITER {
                    enhancenet_telemetry::count(SHARED, 1);
                    enhancenet_telemetry::count(PRIVATE[w], 1);
                    enhancenet_telemetry::observe(HIST, sample(i));
                    enhancenet_telemetry::gauge(GAUGE, i as f64);
                }
            })
        })
        .collect();

    // Snapshot flat-out while the writers run; every snapshot must be
    // internally consistent even mid-hammer.
    let mut previous: BTreeMap<String, u64> = BTreeMap::new();
    let mut snapshots_taken = 0u64;
    while !writers.iter().all(|h| h.is_finished()) {
        let snap = enhancenet_telemetry::snapshot();
        for (label, &value) in &snap.counters {
            if let Some(&prev) = previous.get(label) {
                assert!(
                    value >= prev,
                    "counter {label} went backwards: {prev} -> {value} (snapshot {snapshots_taken})"
                );
            }
        }
        previous = snap.counters.clone();
        if let Some(h) = snap.histograms.get(HIST) {
            let bucket_total: u64 = h.nonzero_buckets().iter().map(|&(_, c)| c).sum();
            assert_eq!(
                bucket_total,
                h.count(),
                "torn histogram: bucket total diverged from count (snapshot {snapshots_taken})"
            );
            if h.count() > 0 {
                let mean = h.sum() / h.count() as f64;
                assert!(
                    (1.0..=128.0).contains(&mean),
                    "torn histogram: mean {mean} outside the sampled range"
                );
            }
        }
        if let Some(&depth) = snap.gauges.get(GAUGE) {
            assert!(
                depth >= 0.0 && depth < PER_WRITER as f64 && depth.fract() == 0.0,
                "torn gauge: {depth} was never stored"
            );
        }
        snapshots_taken += 1;
    }
    for handle in writers {
        handle.join().expect("writer panicked");
    }
    assert!(snapshots_taken > 0, "hammer never overlapped a snapshot");

    // Quiescent totals are exact: no increment or observation was lost.
    let total = WRITERS as u64 * PER_WRITER;
    let snap = enhancenet_telemetry::snapshot();
    assert_eq!(snap.counters[SHARED], total);
    for label in PRIVATE {
        assert_eq!(snap.counters[label], PER_WRITER);
    }
    let h = &snap.histograms[HIST];
    assert_eq!(h.count(), total);
    let expected_sum: f64 = (0..PER_WRITER).map(sample).sum::<f64>() * WRITERS as f64;
    assert_eq!(h.sum(), expected_sum, "histogram sum must be exact for integer samples");
    assert_eq!(snap.gauges[GAUGE], (PER_WRITER - 1) as f64, "last gauge store wins");

    enhancenet_telemetry::set_enabled(false);
    enhancenet_telemetry::reset();
}

#[test]
fn snapshot_is_detached_from_later_writes() {
    let _g = lock_tests();
    enhancenet_telemetry::set_enabled(true);
    enhancenet_telemetry::reset();
    enhancenet_telemetry::count("hammer.detached", 5);
    let before = enhancenet_telemetry::snapshot();
    enhancenet_telemetry::count("hammer.detached", 7);
    // The earlier snapshot is a value copy, not a live view.
    assert_eq!(before.counters["hammer.detached"], 5);
    assert_eq!(enhancenet_telemetry::counter_value("hammer.detached"), 12);
    enhancenet_telemetry::set_enabled(false);
}
