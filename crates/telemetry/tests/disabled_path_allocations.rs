//! Proves the "near-zero overhead when disabled" contract: with telemetry
//! off, scoped timers, trace spans, counters, histograms, and event
//! recording perform **zero heap allocations**. Runs as its own
//! integration binary so the counting allocator sees no interference from
//! sibling tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Telemetry state (and the allocation counter) is process-global:
/// serialize the tests so one test's enabled-path sanity block cannot leak
/// allocations into the other's measured window.
fn lock_tests() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    GUARD
        .get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[test]
fn disabled_fast_path_is_allocation_free() {
    let _g = lock_tests();
    enhancenet_telemetry::set_enabled(false);
    // Event payloads are only worth building when enabled; construct one
    // outside the measured window so record_event itself is what we count.
    let payload = serde_json::json!({"epoch": 1, "loss": 0.5});

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..10_000 {
        let _scope = enhancenet_telemetry::scoped("alloc.test.timer");
        let _span = enhancenet_telemetry::span("alloc.test.span");
        enhancenet_telemetry::count("alloc.test.counter", 3);
        enhancenet_telemetry::observe("alloc.test.histogram", 42.0);
        enhancenet_telemetry::record_event("alloc.test.event", &payload);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "disabled telemetry primitives must not allocate ({} allocations observed)",
        after - before
    );

    // Sanity: the same primitives do record (and may allocate) once enabled.
    enhancenet_telemetry::reset();
    enhancenet_telemetry::set_enabled(true);
    {
        let _scope = enhancenet_telemetry::scoped("alloc.test.timer");
        enhancenet_telemetry::count("alloc.test.counter", 3);
    }
    enhancenet_telemetry::set_enabled(false);
    assert_eq!(enhancenet_telemetry::counter_value("alloc.test.counter"), 3);
    assert!(enhancenet_telemetry::timer_stat("alloc.test.timer").is_some());
}

#[test]
fn disabled_span_and_histogram_paths_are_allocation_free() {
    let _g = lock_tests();
    enhancenet_telemetry::reset();
    enhancenet_telemetry::set_enabled(false);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let _outer = enhancenet_telemetry::span("alloc.span.outer");
        let _inner = enhancenet_telemetry::span("alloc.span.inner");
        enhancenet_telemetry::observe("alloc.hist", i as f64);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "disabled span/histogram primitives must not allocate ({} allocations observed)",
        after - before
    );
    assert_eq!(enhancenet_telemetry::span_count(), 0);
    assert!(enhancenet_telemetry::histogram_summary("alloc.hist").is_none());
}

#[test]
fn disabled_gauge_snapshot_and_slo_paths_are_allocation_free() {
    let _g = lock_tests();
    enhancenet_telemetry::reset();
    enhancenet_telemetry::set_enabled(false);
    // The SLO ring is fixed-size after construction; build it outside the
    // measured window so record/report are what we count.
    let mut slo =
        enhancenet_telemetry::SloWindow::new(std::time::Duration::from_secs(60), 12, 0.99);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        enhancenet_telemetry::gauge("alloc.gauge", i as f64);
        slo.record(i as f64, i % 100 != 0, i % 50 == 0);
    }
    let report = slo.report();
    let snap = enhancenet_telemetry::snapshot();
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "disabled gauges, empty snapshots, and SLO windows must not allocate \
         ({} allocations observed)",
        after - before
    );
    // The SLO window records regardless of the global switch (it is
    // caller-owned state, not registry state) ...
    assert_eq!(report.requests, 10_000);
    assert!(report.deadline_hit_rate < 1.0);
    // ... while the disabled registry stayed untouched and empty.
    assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
    assert!(enhancenet_telemetry::gauge_value("alloc.gauge").is_none());
}
