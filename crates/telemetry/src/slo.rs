//! Rolling-window SLO tracking: a ring of histogram deltas that answers
//! "what is the p99 *right now*?" instead of "since process start".
//!
//! The global registry's histograms are cumulative: after an hour of
//! traffic, one slow minute barely moves the since-start p99, which makes
//! them useless for alerting. [`SloWindow`] keeps the last
//! `window = slots × slot` of activity in a fixed ring of slots, each
//! holding its own latency [`Histogram`] plus request/deadline/degradation
//! tallies. Recording rotates stale slots lazily (no background thread);
//! reporting merges only the slots that still fall inside the window, so
//! an idle period ages out naturally.
//!
//! Everything is fixed-size and allocation-free after construction:
//! `record` touches one slot, `report` merges at most `slots` histograms
//! on the stack. Callers wanting concurrency wrap the window in a mutex;
//! the critical sections are a single histogram update or one bounded
//! merge — the same "never block longer than one copy" discipline as
//! [`crate::metrics`].

use crate::Histogram;
use std::time::{Duration, Instant};

/// One ring slot: the activity of one `slot_ns`-wide time slice.
#[derive(Debug, Clone)]
struct Slot {
    /// Absolute slot number (`now_ns / slot_ns`) this slot currently
    /// represents; [`Slot::EMPTY`] when never written or aged out.
    index: u64,
    latency: Histogram,
    requests: u64,
    deadline_hits: u64,
    degraded: u64,
}

impl Slot {
    const EMPTY: u64 = u64::MAX;

    fn new() -> Self {
        Slot {
            index: Self::EMPTY,
            latency: Histogram::default(),
            requests: 0,
            deadline_hits: 0,
            degraded: 0,
        }
    }

    /// Reuses this slot for absolute slot `index` (in-place, no alloc).
    fn recycle(&mut self, index: u64) {
        self.index = index;
        self.latency = Histogram::default();
        self.requests = 0;
        self.deadline_hits = 0;
        self.degraded = 0;
    }
}

/// Windowed service-level statistics from [`SloWindow::report`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloReport {
    /// The rolling window the numbers cover.
    pub window: Duration,
    /// The configured deadline hit-rate target in `(0, 1]`.
    pub target: f64,
    /// Requests recorded inside the window.
    pub requests: u64,
    /// Windowed median latency in nanoseconds (NaN when no requests).
    pub latency_p50_ns: f64,
    /// Windowed 95th-percentile latency in nanoseconds (NaN when empty).
    pub latency_p95_ns: f64,
    /// Windowed 99th-percentile latency in nanoseconds (NaN when empty).
    pub latency_p99_ns: f64,
    /// Fraction of windowed requests answered within their deadline
    /// (1.0 when no requests — an idle service is not out of SLO).
    pub deadline_hit_rate: f64,
    /// Fraction of windowed requests answered with a degraded fallback.
    pub degraded_rate: f64,
    /// Error-budget burn rate: `(1 - hit_rate) / (1 - target)`. 1.0 means
    /// the budget is being spent exactly as provisioned; above 1.0 the
    /// window is eating future budget. Infinite when `target == 1` and
    /// any request missed.
    pub error_budget_burn: f64,
}

impl SloReport {
    /// An empty-window report (the identity the gauges start from).
    fn idle(window: Duration, target: f64) -> Self {
        SloReport {
            window,
            target,
            requests: 0,
            latency_p50_ns: f64::NAN,
            latency_p95_ns: f64::NAN,
            latency_p99_ns: f64::NAN,
            deadline_hit_rate: 1.0,
            degraded_rate: 0.0,
            error_budget_burn: 0.0,
        }
    }
}

/// A rolling window of request outcomes; see the module docs.
#[derive(Debug)]
pub struct SloWindow {
    slot_ns: u64,
    target: f64,
    epoch: Instant,
    slots: Vec<Slot>,
}

impl SloWindow {
    /// A window spanning `window`, resolved into `slots` ring slots, with
    /// deadline-hit SLO target `target` (e.g. `0.99` for "99% of requests
    /// answered in time").
    ///
    /// # Panics
    /// When `slots == 0`, `window` is shorter than one nanosecond per
    /// slot, or `target` is outside `(0, 1]` — serving validates its
    /// config before constructing the window.
    pub fn new(window: Duration, slots: usize, target: f64) -> Self {
        assert!(slots > 0, "SloWindow needs at least one slot");
        let slot_ns = (window.as_nanos() / slots as u128) as u64;
        assert!(slot_ns > 0, "window too short for {slots} slots");
        assert!(target > 0.0 && target <= 1.0, "target must be in (0, 1], got {target}");
        SloWindow { slot_ns, target, epoch: Instant::now(), slots: vec![Slot::new(); slots] }
    }

    /// The rolling span this window covers.
    pub fn window(&self) -> Duration {
        Duration::from_nanos(self.slot_ns * self.slots.len() as u64)
    }

    /// The configured deadline hit-rate target.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// Records one request outcome at the current time.
    pub fn record(&mut self, latency_ns: f64, deadline_hit: bool, degraded: bool) {
        self.record_at(self.epoch.elapsed().as_nanos() as u64, latency_ns, deadline_hit, degraded);
    }

    /// Windowed statistics as of the current time.
    pub fn report(&self) -> SloReport {
        self.report_at(self.epoch.elapsed().as_nanos() as u64)
    }

    /// [`SloWindow::record`] with an explicit clock (nanoseconds since the
    /// window's epoch) — the testable core.
    pub fn record_at(&mut self, now_ns: u64, latency_ns: f64, deadline_hit: bool, degraded: bool) {
        let abs = now_ns / self.slot_ns;
        let len = self.slots.len() as u64;
        let slot = &mut self.slots[(abs % len) as usize];
        if slot.index != abs {
            slot.recycle(abs);
        }
        slot.latency.observe(latency_ns);
        slot.requests += 1;
        if deadline_hit {
            slot.deadline_hits += 1;
        }
        if degraded {
            slot.degraded += 1;
        }
    }

    /// [`SloWindow::report`] with an explicit clock — merges every slot
    /// whose slice still overlaps `(now - window, now]`.
    pub fn report_at(&self, now_ns: u64) -> SloReport {
        let abs = now_ns / self.slot_ns;
        let len = self.slots.len() as u64;
        let oldest = abs.saturating_sub(len - 1);
        let mut latency = Histogram::default();
        let (mut requests, mut hits, mut degraded) = (0u64, 0u64, 0u64);
        for slot in &self.slots {
            if slot.index == Slot::EMPTY || slot.index < oldest || slot.index > abs {
                continue; // never written, aged out, or (impossible) future
            }
            latency.merge(&slot.latency);
            requests += slot.requests;
            hits += slot.deadline_hits;
            degraded += slot.degraded;
        }
        if requests == 0 {
            return SloReport::idle(self.window(), self.target);
        }
        let hit_rate = hits as f64 / requests as f64;
        let budget = 1.0 - self.target;
        let burn = if budget > 0.0 {
            (1.0 - hit_rate) / budget
        } else if hits == requests {
            0.0
        } else {
            f64::INFINITY
        };
        SloReport {
            window: self.window(),
            target: self.target,
            requests,
            latency_p50_ns: latency.quantile(0.50),
            latency_p95_ns: latency.quantile(0.95),
            latency_p99_ns: latency.quantile(0.99),
            deadline_hit_rate: hit_rate,
            degraded_rate: degraded as f64 / requests as f64,
            error_budget_burn: burn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SLOT: u64 = 1_000_000_000; // 1 s slots in a 4 s window

    fn window() -> SloWindow {
        SloWindow::new(Duration::from_secs(4), 4, 0.9)
    }

    #[test]
    fn empty_window_reports_idle_identity() {
        let w = window();
        let r = w.report_at(10 * SLOT);
        assert_eq!(r.requests, 0);
        assert_eq!(r.deadline_hit_rate, 1.0);
        assert_eq!(r.degraded_rate, 0.0);
        assert_eq!(r.error_budget_burn, 0.0);
        assert!(r.latency_p99_ns.is_nan());
        assert_eq!(r.window, Duration::from_secs(4));
    }

    #[test]
    fn rates_and_quantiles_aggregate_across_slots() {
        let mut w = window();
        // 3 hits in slot 0, 1 degraded miss in slot 2.
        for _ in 0..3 {
            w.record_at(100, 1_000.0, true, false);
        }
        w.record_at(2 * SLOT + 5, 64_000.0, false, true);
        let r = w.report_at(2 * SLOT + 10);
        assert_eq!(r.requests, 4);
        assert!((r.deadline_hit_rate - 0.75).abs() < 1e-12);
        assert!((r.degraded_rate - 0.25).abs() < 1e-12);
        // burn = (1 - 0.75) / (1 - 0.9) = 2.5 — overspending the budget.
        assert!((r.error_budget_burn - 2.5).abs() < 1e-9);
        assert!(r.latency_p50_ns <= r.latency_p95_ns);
        assert!(r.latency_p95_ns <= r.latency_p99_ns);
        assert!(r.latency_p99_ns <= 64_000.0 + 1.0);
    }

    #[test]
    fn old_slots_age_out_of_the_window() {
        let mut w = window();
        w.record_at(100, 1_000.0, false, true);
        // Still visible while the window covers slot 0 ...
        assert_eq!(w.report_at(3 * SLOT).requests, 1);
        // ... gone once 4 slots have passed, without any recording since.
        let r = w.report_at(4 * SLOT + 1);
        assert_eq!(r.requests, 0);
        assert_eq!(r.deadline_hit_rate, 1.0);
    }

    #[test]
    fn ring_slots_recycle_in_place() {
        let mut w = window();
        w.record_at(0, 1.0, true, false);
        // 4 slots later the ring wraps onto slot index 0's storage.
        w.record_at(4 * SLOT + 1, 2.0, false, false);
        let r = w.report_at(4 * SLOT + 2);
        // Only the fresh record remains: the stale slot was recycled, not
        // merged.
        assert_eq!(r.requests, 1);
        assert_eq!(r.deadline_hit_rate, 0.0);
    }

    #[test]
    fn perfect_target_burns_infinitely_on_any_miss() {
        let mut w = SloWindow::new(Duration::from_secs(4), 4, 1.0);
        w.record_at(10, 5.0, true, false);
        assert_eq!(w.report_at(20).error_budget_burn, 0.0);
        w.record_at(30, 5.0, false, false);
        assert!(w.report_at(40).error_budget_burn.is_infinite());
    }

    #[test]
    fn wall_clock_entry_points_work() {
        let mut w = SloWindow::new(Duration::from_secs(60), 6, 0.99);
        w.record(1_000.0, true, false);
        let r = w.report();
        assert_eq!(r.requests, 1);
        assert_eq!(r.deadline_hit_rate, 1.0);
        assert_eq!(w.target(), 0.99);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panic() {
        let _ = SloWindow::new(Duration::from_secs(1), 0, 0.9);
    }

    #[test]
    #[should_panic(expected = "target must be in")]
    fn bad_target_panics() {
        let _ = SloWindow::new(Duration::from_secs(1), 2, 0.0);
    }
}
