//! Live exposition: render a [`MetricsSnapshot`] in the Prometheus text
//! format and serve it over a tiny dependency-free TCP listener.
//!
//! [`render_prometheus`] maps the snapshot onto text exposition format
//! 0.0.4: counters as `counter`, gauges as `gauge`, and the fixed-bucket
//! log-scale histograms as `summary` families (the quantiles are already
//! computed bucket-side, so a summary is the faithful translation — no
//! fake `le` buckets). Label names are sanitized to the Prometheus
//! grammar (`[a-zA-Z_:][a-zA-Z0-9_:]*`), so `serve.latency_ns` scrapes as
//! `serve_latency_ns`.
//!
//! [`MetricsServer`] is a single-threaded `std::net::TcpListener` loop —
//! no async runtime, no HTTP crate — answering exactly three paths:
//!
//! * `GET /metrics` — the current snapshot, freshly rendered per scrape.
//! * `GET /healthz` — liveness: 200 as long as the listener thread runs.
//! * `GET /readyz`  — readiness: 200/503 from the caller-supplied probe
//!   (serving wires this to "window warm && worker alive").
//!
//! One scrape per connection (`Connection: close`) keeps the loop free of
//! keep-alive bookkeeping; Prometheus is happy with that at any sane
//! scrape interval. Each scrape takes one metrics snapshot, so the cost a
//! scrape imposes on the serving hot path is exactly the bounded
//! per-shard/per-histogram copies documented in [`crate::metrics`].

use crate::metrics::{snapshot, MetricsSnapshot};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Readiness probe for `/readyz`; returns `true` when traffic may flow.
pub type ReadyProbe = Arc<dyn Fn() -> bool + Send + Sync>;

/// Sanitizes a metric label to the Prometheus name grammar: every byte
/// outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit is prefixed.
fn prom_name(label: &str) -> String {
    let mut out = String::with_capacity(label.len() + 1);
    for (i, ch) in label.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_'); // a name may not start with a digit
        }
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders `v` the way Prometheus parsers expect special floats spelled.
fn prom_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders the snapshot as Prometheus text exposition format 0.0.4.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (label, value) in &snap.counters {
        let name = prom_name(label);
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (label, value) in &snap.gauges {
        let name = prom_name(label);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", prom_value(*value)));
    }
    for (label, h) in &snap.histograms {
        let name = prom_name(label);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (q, tag) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
            out.push_str(&format!("{name}{{quantile=\"{tag}\"}} {}\n", prom_value(h.quantile(q))));
        }
        out.push_str(&format!("{name}_sum {}\n", prom_value(h.sum())));
        out.push_str(&format!("{name}_count {}\n", h.count()));
    }
    out
}

/// The `/metrics` + `/healthz` + `/readyz` listener; see the module docs.
///
/// Binding starts the accept thread immediately; dropping the server (or
/// calling [`MetricsServer::shutdown`]) stops and joins it.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer").field("addr", &self.addr).finish()
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9898"`, port 0 for ephemeral) and
    /// starts answering scrapes. `ready` backs `/readyz`.
    pub fn bind<A: ToSocketAddrs>(addr: A, ready: ReadyProbe) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("metrics-server".into())
            .spawn(move || accept_loop(listener, &stop_flag, &ready))?;
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The actually bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread. Also runs on drop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept() by poking our own listener; harmless if
            // the thread already observed the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, stop: &AtomicBool, ready: &ReadyProbe) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Best-effort per connection: a misbehaving scraper is dropped,
        // never crashes the exporter.
        let _ = handle_connection(stream, ready);
    }
}

/// Reads one request line, routes it, writes one response, closes.
fn handle_connection(mut stream: TcpStream, ready: &ReadyProbe) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 2048];
    let mut len = 0usize;
    // Read until the end of the request head (or the cap); scrapers send
    // tiny requests, so one read normally suffices.
    loop {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if len >= buf.len() || buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => {
            crate::count("telemetry.export.scrapes", 1);
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", render_prometheus(&snapshot()))
        }
        ("GET", "/healthz") => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        ("GET", "/readyz") => {
            if ready() {
                ("200 OK", "text/plain; charset=utf-8", "ready\n".to_string())
            } else {
                ("503 Service Unavailable", "text/plain; charset=utf-8", "not ready\n".to_string())
            }
        }
        ("GET", _) => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
        _ => ("405 Method Not Allowed", "text/plain; charset=utf-8", "GET only\n".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(prom_name("serve.latency_ns"), "serve_latency_ns");
        assert_eq!(prom_name("serve.slo.p99"), "serve_slo_p99");
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(prom_name("a b\"c"), "a_b_c");
        assert_eq!(prom_name(""), "_");
    }

    #[test]
    fn prom_values_spell_special_floats() {
        assert_eq!(prom_value(f64::NAN), "NaN");
        assert_eq!(prom_value(f64::INFINITY), "+Inf");
        assert_eq!(prom_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(prom_value(2.5), "2.5");
    }

    #[test]
    fn renders_all_three_families() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("serve.request".into(), 42);
        snap.gauges.insert("serve.queue.depth".into(), 3.0);
        let mut h = Histogram::default();
        for v in [10.0, 20.0, 40.0] {
            h.observe(v);
        }
        snap.histograms.insert("serve.latency_ns".into(), h);
        let text = render_prometheus(&snap);
        assert!(text.contains("# TYPE serve_request counter\nserve_request 42\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 3\n"));
        assert!(text.contains("# TYPE serve_latency_ns summary\n"));
        assert!(text.contains("serve_latency_ns{quantile=\"0.99\"}"));
        assert!(text.contains("serve_latency_ns_sum 70\n"));
        assert!(text.contains("serve_latency_ns_count 3\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad sample line: {line}");
        }
    }
}
