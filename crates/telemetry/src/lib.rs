//! # enhancenet-telemetry
//!
//! Process-global, low-overhead observability for the EnhanceNet stack:
//! the instrumentation behind Table V's runtime accounting (seconds per
//! training epoch, milliseconds per prediction) and the CI perf-trajectory
//! pipeline.
//!
//! Five primitives feed one global [`Registry`]:
//!
//! * **Scoped timers** — [`scoped`] returns an RAII guard that attributes
//!   the enclosed wall-clock time to a label on drop. Nested scopes each
//!   bill their own label, so `trainer.forward` and an inner
//!   `dfgn.generate` coexist without double bookkeeping.
//! * **Trace spans** — [`span`] is the hierarchical sibling of [`scoped`]:
//!   on top of the same per-label aggregation it records each completed
//!   interval with its thread id, nesting depth, and start offset, so the
//!   run can be exported as a Chrome `trace_event` timeline
//!   ([`render_chrome_trace`], viewable in `chrome://tracing` / Perfetto).
//! * **Counters** — [`count`] accumulates monotonic `u64` totals (kernel
//!   calls, elements moved, parallel-vs-serial dispatch decisions, batches
//!   and windows routed through the sharded trainer). Names are a
//!   contract: `scripts/bench_summary --check` pins the `tensor.*`,
//!   `serve.*`/`damgn.fold.*`, and `trainer.shard.*` families against
//!   allow-lists so dashboard keys stay stable across commits.
//! * **Histograms** — [`observe`] feeds fixed-bucket log-scale histograms
//!   (power-of-two bucket edges) that report p50/p95/p99 without storing
//!   raw samples: per-batch step latency, per-window inference latency,
//!   per-epoch gradient norms.
//! * **Gauges** — [`gauge`] sets a last-write-wins level (queue depth,
//!   window fill, windowed p99) that live scrapes read as "the value right
//!   now", unlike the monotone counters.
//! * **Events** — [`record_event`] appends a structured record (any
//!   `serde::Serialize` payload), used by the trainer for per-epoch
//!   progress and by the model-health probes in `enhancenet::probes`.
//!
//! Everything is gated on one process-global [`AtomicBool`]: when telemetry
//! is disabled (the default) every primitive returns after a single relaxed
//! atomic load — no locking, no allocation, no `Instant::now()`. Benchmarks
//! and the inference hot path therefore pay one predictable branch.
//!
//! Counters, gauges, and histograms live in the lock-striped [`metrics`]
//! store so a live [`snapshot`] (and the `/metrics` endpoint the
//! [`export`] module serves from it) never stalls the hot path behind one
//! global lock; [`slo`] builds rolling-window SLO statistics on the same
//! [`Histogram`]. Spans and events stay in the trace registry behind a
//! mutex, with **bounded ring retention**: beyond [`MAX_SPANS`] /
//! [`MAX_EVENTS`] records the oldest are recycled and the
//! `telemetry.dropped_records` counter accounts for every record shed, so
//! a long-lived service cannot grow without bound.
//!
//! The registry renders three ways: [`render_jsonl`] (one JSON object per
//! line — `meta`, `counter`, `gauge`, `timer`, `histogram`, `span`, and
//! `event` records; the format `scripts/bench_summary` consumes),
//! [`render_chrome_trace`] (a `trace_event` JSON document), and
//! [`summary_table`] (a human-aligned table for stderr). Live scrapes use
//! [`export::render_prometheus`] on a [`MetricsSnapshot`] instead.
//!
//! Guards are hardened against a concurrent [`reset`]: each captures the
//! registry generation at creation and drops its measurement silently if a
//! reset happened in between, so a racing reset can never corrupt the fresh
//! registry or panic a drop.
//!
//! ```
//! enhancenet_telemetry::reset();
//! enhancenet_telemetry::set_enabled(true);
//! {
//!     let _t = enhancenet_telemetry::span("demo.work");
//!     enhancenet_telemetry::count("demo.items", 3);
//!     enhancenet_telemetry::observe("demo.latency_ns", 1250.0);
//! }
//! let jsonl = enhancenet_telemetry::render_jsonl();
//! assert!(jsonl.lines().count() >= 4);
//! enhancenet_telemetry::set_enabled(false);
//! ```

pub mod export;
pub mod metrics;
pub mod slo;

pub use export::{render_prometheus, MetricsServer, ReadyProbe};
pub use metrics::{snapshot, MetricsSnapshot};
pub use slo::{SloReport, SloWindow};

use serde::Serialize;
use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Counter incremented each time bounded ring retention recycles a span or
/// event record; the one observable trace of shed telemetry.
pub const DROPPED_RECORDS: &str = "telemetry.dropped_records";

/// Master switch. Relaxed ordering is sufficient: the flag only gates
/// best-effort accounting, never data the computation depends on.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether [`echo`] lines are printed to stderr (the `verbose` sink).
static ECHO: AtomicBool = AtomicBool::new(false);

/// Bumped by [`reset`]. Live guards compare against their creation-time
/// value on drop and discard the measurement when it no longer matches, so
/// a reset that races a live scope/span cannot pollute the fresh registry.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Source of process-unique thread ids for span records (0 is reserved for
/// "unknown", i.e. TLS already torn down).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small dense per-thread id, assigned on first span in the thread.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// The instant all span `start_us` offsets are measured from (first use).
fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// True when telemetry collection is on. One relaxed atomic load — callers
/// may use it to skip label/payload construction entirely.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Turns the human echo sink (stderr) on or off. Independent of
/// [`set_enabled`]: a verbose run prints progress lines even when no JSONL
/// is being collected.
pub fn set_echo(on: bool) {
    ECHO.store(on, Ordering::Relaxed);
}

/// True when [`echo`] prints to stderr.
#[inline]
pub fn echo_enabled() -> bool {
    ECHO.load(Ordering::Relaxed)
}

/// The human progress sink: prints `line` to stderr when echo is enabled.
/// Trainer `verbose` output routes through here so there is exactly one
/// place progress lines leave the process.
pub fn echo(line: &str) {
    if echo_enabled() {
        eprintln!("{line}");
    }
}

/// Aggregate for one timer label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerStat {
    /// Completed scopes recorded under this label.
    pub calls: u64,
    /// Total wall-clock nanoseconds across those scopes.
    pub total_ns: u64,
}

/// One completed trace span: a timer interval annotated with enough context
/// (thread, depth, start offset) to reconstruct the call tree.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span label, shared with the aggregated timer of the same name.
    pub label: &'static str,
    /// Process-unique small thread id (0 when TLS was unavailable).
    pub tid: u64,
    /// Nesting depth on `tid` at span start (0 = top level).
    pub depth: u32,
    /// Start offset in microseconds from the process telemetry epoch.
    pub start_us: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

/// Spans retained per run; beyond this the ring recycles the oldest span
/// and the `telemetry.dropped_records` counter increments (aggregated
/// timers keep counting regardless). The cap is far above what a training
/// run records, so exports there are byte-identical to unbounded
/// retention; only long-lived services shed.
pub const MAX_SPANS: usize = 1 << 16;

/// Events retained per run, with the same drop-oldest ring policy (and the
/// same `telemetry.dropped_records` accounting) as [`MAX_SPANS`].
pub const MAX_EVENTS: usize = 1 << 16;

/// Number of fixed log-scale histogram buckets. Bucket `i` covers
/// `[2^(i-32), 2^(i-31))`, so the range spans `2^-32` up to `2^48` — wide
/// enough for both gradient norms and nanosecond latencies (~78 hours).
pub const HISTOGRAM_BUCKETS: usize = 80;

/// Fixed-bucket log-scale histogram. Stores only bucket counts plus exact
/// count/sum/min/max, so memory is constant regardless of sample volume;
/// quantiles are estimated by a cumulative bucket walk with linear
/// interpolation inside the target bucket, clamped to the observed
/// `[min, max]`.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Bucket index for `v`: `floor(log2 v) + 32`, clamped to the table.
    /// Non-positive values land in bucket 0 (callers filter non-finite).
    fn bucket_index(v: f64) -> usize {
        if v <= 0.0 {
            return 0;
        }
        let idx = v.log2().floor() as i64 + 32;
        idx.clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
    }

    /// `[lo, hi)` value bounds of bucket `i`.
    fn bucket_bounds(i: usize) -> (f64, f64) {
        (2f64.powi(i as i32 - 32), 2f64.powi(i as i32 - 31))
    }

    /// Records one sample. Non-finite values are ignored.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }

    /// Folds `other` into `self` bucket-by-bucket (exact: the merged
    /// histogram equals one that observed both sample streams). This is
    /// what lets [`slo::SloWindow`] aggregate per-slot deltas into a
    /// rolling window without storing raw samples.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded sample (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest recorded sample (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Arithmetic mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated quantile `q` in `[0, 1]`: cumulative bucket walk, linear
    /// interpolation inside the landing bucket, clamped to `[min, max]`.
    /// NaN when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                let frac = ((rank - cum as f64) / c as f64).clamp(0.0, 1.0);
                return (lo + frac * (hi - lo)).clamp(self.min, self.max);
            }
            cum += c;
        }
        self.max
    }

    /// Non-empty buckets as `(index, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c)).collect()
    }
}

/// Copyable snapshot of one histogram's headline statistics.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// One structured event: a kind tag plus an arbitrary JSON payload.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event family, e.g. `"epoch"` or `"probe.entity_error"`.
    pub kind: String,
    /// Serialized payload fields.
    pub payload: serde_json::Value,
}

/// The process-global trace store behind the module-level free functions.
/// Counters, gauges, and histograms live in the lock-striped [`metrics`]
/// store instead, so only trace data (timers, spans, events) contends on
/// this mutex.
#[derive(Debug, Default)]
pub struct Registry {
    timers: BTreeMap<String, TimerStat>,
    spans: VecDeque<SpanRecord>,
    events: VecDeque<Event>,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// RAII guard from [`scoped`]; bills elapsed time to its label on drop.
/// When telemetry is disabled the guard is inert (holds no timestamp).
/// If [`reset`] runs while the guard is live, the measurement is discarded
/// on drop rather than written into the fresh registry.
#[must_use = "the timer records on drop; binding to _ drops immediately"]
pub struct Scope {
    inner: Option<(&'static str, Instant, u64)>,
}

/// Starts a scoped wall-clock timer. Disabled path: one atomic load, no
/// allocation, no clock read.
#[inline]
pub fn scoped(label: &'static str) -> Scope {
    if !enabled() {
        return Scope { inner: None };
    }
    Scope { inner: Some((label, Instant::now(), GENERATION.load(Ordering::Relaxed))) }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if let Some((label, start, generation)) = self.inner.take() {
            let ns = start.elapsed().as_nanos() as u64;
            if GENERATION.load(Ordering::Relaxed) != generation {
                return; // reset() raced this scope; discard the interval.
            }
            let mut reg = registry();
            let stat = reg.timers.entry(label.to_string()).or_default();
            stat.calls += 1;
            stat.total_ns += ns;
        }
    }
}

struct SpanInner {
    label: &'static str,
    start: Instant,
    start_us: u64,
    tid: u64,
    depth: u32,
    generation: u64,
}

/// RAII guard from [`span`]. On drop it aggregates into the timer of the
/// same label (exactly like [`Scope`]) and additionally records a
/// [`SpanRecord`] carrying thread id, nesting depth, and start offset.
#[must_use = "the span records on drop; binding to _ drops immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

/// Starts a hierarchical trace span. Disabled path: one atomic load, no
/// allocation, no clock read, no TLS access. Enabled spans nest: each
/// thread tracks its current depth, so `trainer.epoch` >
/// `trainer.forward` > `autodiff.backward` reconstructs as a tree in the
/// Chrome trace export.
#[inline]
pub fn span(label: &'static str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let generation = GENERATION.load(Ordering::Relaxed);
    let tid = TID.try_with(|t| *t).unwrap_or(0);
    let depth = DEPTH
        .try_with(|d| {
            let v = d.get();
            d.set(v.saturating_add(1));
            v
        })
        .unwrap_or(0);
    let start_us = process_epoch().elapsed().as_micros() as u64;
    Span {
        inner: Some(SpanInner { label, start: Instant::now(), start_us, tid, depth, generation }),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(s) = self.inner.take() {
            // Re-balance this thread's depth even when the record is
            // discarded; saturating + try_with keep teardown panic-free.
            let _ = DEPTH.try_with(|d| d.set(d.get().saturating_sub(1)));
            let dur_ns = s.start.elapsed().as_nanos() as u64;
            if GENERATION.load(Ordering::Relaxed) != s.generation {
                return; // reset() raced this span; discard the interval.
            }
            let mut reg = registry();
            let stat = reg.timers.entry(s.label.to_string()).or_default();
            stat.calls += 1;
            stat.total_ns += dur_ns;
            let dropped = if reg.spans.len() >= MAX_SPANS {
                reg.spans.pop_front();
                true
            } else {
                false
            };
            reg.spans.push_back(SpanRecord {
                label: s.label,
                tid: s.tid,
                depth: s.depth,
                start_us: s.start_us,
                dur_ns,
            });
            drop(reg); // the metrics store has its own locks
            if dropped {
                metrics::add(DROPPED_RECORDS, 1);
            }
        }
    }
}

/// Adds `n` to the monotonic counter `label`. Disabled path: one atomic
/// load, nothing else. Enabled path: a shard-striped map lookup, then one
/// lock-free `fetch_add` — see [`metrics`].
#[inline]
pub fn count(label: &str, n: u64) {
    if !enabled() {
        return;
    }
    metrics::add(label, n);
}

/// Sets the gauge `label` to `value` (a level, not an accumulation: the
/// scrape sees the last write). Disabled path: one atomic load, nothing
/// else. Non-finite values are stored verbatim — a NaN gauge renders as
/// `NaN` in the Prometheus exposition.
#[inline]
pub fn gauge(label: &str, value: f64) {
    if !enabled() {
        return;
    }
    metrics::set_gauge(label, value);
}

/// Records `value` into the log-scale histogram `label`. Disabled path:
/// one atomic load, nothing else. Non-finite values are ignored. Enabled
/// path locks only that histogram's cell — never the whole registry.
#[inline]
pub fn observe(label: &str, value: f64) {
    if !enabled() {
        return;
    }
    metrics::observe(label, value);
}

/// Appends a structured event. The payload is serialized immediately so
/// the caller may hand over borrowed data. No-op (and no serialization)
/// when disabled.
pub fn record_event<T: Serialize>(kind: &str, payload: &T) {
    if !enabled() {
        return;
    }
    let payload = serde_json::to_value(payload).unwrap_or(serde_json::Value::Null);
    let dropped = {
        let mut reg = registry();
        let dropped = if reg.events.len() >= MAX_EVENTS {
            reg.events.pop_front();
            true
        } else {
            false
        };
        reg.events.push_back(Event { kind: kind.to_string(), payload });
        dropped
    };
    if dropped {
        metrics::add(DROPPED_RECORDS, 1);
    }
}

/// Current value of a counter (0 when absent). Intended for tests and the
/// summary renderers.
pub fn counter_value(label: &str) -> u64 {
    metrics::counter_value(label)
}

/// Current value of a gauge, if it was ever set.
pub fn gauge_value(label: &str) -> Option<f64> {
    metrics::gauge_value(label)
}

/// Aggregate for a timer label, if any scope completed under it.
pub fn timer_stat(label: &str) -> Option<TimerStat> {
    registry().timers.get(label).copied()
}

/// Snapshot of one histogram's headline statistics, if it has samples.
pub fn histogram_summary(label: &str) -> Option<HistogramSummary> {
    let h = metrics::histogram(label)?;
    if h.count() == 0 {
        return None;
    }
    Some(HistogramSummary {
        count: h.count(),
        sum: h.sum(),
        min: h.min(),
        max: h.max(),
        p50: h.quantile(0.50),
        p95: h.quantile(0.95),
        p99: h.quantile(0.99),
    })
}

/// Number of span records currently held.
pub fn span_count() -> usize {
    registry().spans.len()
}

/// Clone of all span records (for tests and exporters built on top).
pub fn span_records() -> Vec<SpanRecord> {
    registry().spans.iter().cloned().collect()
}

/// Number of events recorded under `kind`.
pub fn event_count(kind: &str) -> usize {
    registry().events.iter().filter(|e| e.kind == kind).count()
}

/// Clone of the payloads of all events recorded under `kind`.
pub fn events_of_kind(kind: &str) -> Vec<serde_json::Value> {
    registry().events.iter().filter(|e| e.kind == kind).map(|e| e.payload.clone()).collect()
}

/// Total records (timers + counters + gauges + histograms + spans +
/// events) currently held.
pub fn record_count() -> usize {
    let trace = {
        let reg = registry();
        reg.timers.len() + reg.spans.len() + reg.events.len()
    };
    trace + metrics::label_count()
}

/// Clears all recorded data (flags are untouched) and advances the
/// registry generation so any guard still live discards its measurement
/// instead of writing it into the cleared registry.
pub fn reset() {
    // Bump first: a guard dropping between the bump and the clear compares
    // generations, sees the mismatch, and discards — never double-records.
    GENERATION.fetch_add(1, Ordering::Relaxed);
    {
        let mut reg = registry();
        reg.timers.clear();
        reg.spans.clear();
        reg.events.clear();
    }
    metrics::reset();
}

/// Renders the registry as JSONL: a `meta` header line, then one line per
/// counter, gauge, timer, histogram, span, and event (in that order).
/// Every line is a standalone JSON object with a `"type"` discriminant —
/// the contract `scripts/bench_summary` validates. Metrics come from one
/// consistent [`snapshot`]; trace data from the span registry.
pub fn render_jsonl() -> String {
    let snap = metrics::snapshot();
    let reg = registry();
    let mut out = String::new();
    let meta = serde_json::json!({
        "type": "meta",
        "schema": "enhancenet-telemetry-v1",
        "counters": snap.counters.len(),
        "gauges": snap.gauges.len(),
        "timers": reg.timers.len(),
        "histograms": snap.histograms.len(),
        "spans": reg.spans.len(),
        "events": reg.events.len(),
    });
    out.push_str(&meta.to_string());
    out.push('\n');
    for (label, value) in &snap.counters {
        let line = serde_json::json!({"type": "counter", "label": label, "value": value});
        out.push_str(&line.to_string());
        out.push('\n');
    }
    for (label, value) in &snap.gauges {
        let line = serde_json::json!({"type": "gauge", "label": label, "value": value});
        out.push_str(&line.to_string());
        out.push('\n');
    }
    for (label, stat) in &reg.timers {
        let line = serde_json::json!({
            "type": "timer",
            "label": label,
            "calls": stat.calls,
            "total_ns": stat.total_ns,
        });
        out.push_str(&line.to_string());
        out.push('\n');
    }
    for (label, h) in &snap.histograms {
        let buckets: Vec<[u64; 2]> =
            h.nonzero_buckets().into_iter().map(|(i, c)| [i as u64, c]).collect();
        let line = serde_json::json!({
            "type": "histogram",
            "label": label,
            "count": h.count(),
            "sum": h.sum(),
            "min": h.min(),
            "max": h.max(),
            "p50": h.quantile(0.50),
            "p95": h.quantile(0.95),
            "p99": h.quantile(0.99),
            "buckets": buckets,
        });
        out.push_str(&line.to_string());
        out.push('\n');
    }
    for s in &reg.spans {
        let line = serde_json::json!({
            "type": "span",
            "label": s.label,
            "tid": s.tid,
            "depth": s.depth,
            "start_us": s.start_us,
            "dur_ns": s.dur_ns,
        });
        out.push_str(&line.to_string());
        out.push('\n');
    }
    for event in &reg.events {
        let mut line = serde_json::Map::new();
        line.insert("type".into(), "event".into());
        line.insert("kind".into(), event.kind.clone().into());
        line.insert("payload".into(), event.payload.clone());
        out.push_str(&serde_json::Value::Object(line).to_string());
        out.push('\n');
    }
    out
}

/// Writes [`render_jsonl`] to `path`, creating parent directories.
pub fn write_jsonl(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(render_jsonl().as_bytes())
}

/// Renders all span records as a Chrome `trace_event` JSON document
/// (complete `"ph": "X"` events, timestamps and durations in
/// microseconds). Load the output in `chrome://tracing` or
/// <https://ui.perfetto.dev> to see the per-thread span tree.
pub fn render_chrome_trace() -> String {
    let reg = registry();
    let mut events = Vec::with_capacity(reg.spans.len());
    for s in &reg.spans {
        events.push(serde_json::json!({
            "name": s.label,
            "cat": "enhancenet",
            "ph": "X",
            "ts": s.start_us,
            "dur": s.dur_ns as f64 / 1e3,
            "pid": 1,
            "tid": s.tid,
            "args": {"depth": s.depth},
        }));
    }
    serde_json::json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    })
    .to_string()
}

/// Writes [`render_chrome_trace`] to `path`, creating parent directories.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(render_chrome_trace().as_bytes())
}

/// Renders a human-readable summary: timers sorted by total time (label
/// breaks ties, so the table is deterministic), then histograms, counters,
/// gauges, and event tallies.
pub fn summary_table() -> String {
    let snap = metrics::snapshot();
    let reg = registry();
    let mut out = String::new();
    if !reg.timers.is_empty() {
        out.push_str(&format!(
            "{:<32} {:>10} {:>12} {:>12}\n",
            "timer", "calls", "total ms", "mean µs"
        ));
        let mut timers: Vec<(&String, &TimerStat)> = reg.timers.iter().collect();
        timers.sort_by_key(|(label, s)| (std::cmp::Reverse(s.total_ns), *label));
        for (label, stat) in timers {
            let total_ms = stat.total_ns as f64 / 1e6;
            let mean_us = stat.total_ns as f64 / 1e3 / stat.calls.max(1) as f64;
            out.push_str(&format!(
                "{label:<32} {:>10} {total_ms:>12.3} {mean_us:>12.2}\n",
                stat.calls
            ));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str(&format!(
            "{:<32} {:>10} {:>12} {:>12} {:>12}\n",
            "histogram", "count", "p50", "p95", "p99"
        ));
        for (label, h) in &snap.histograms {
            out.push_str(&format!(
                "{label:<32} {:>10} {:>12.3} {:>12.3} {:>12.3}\n",
                h.count(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
            ));
        }
    }
    if !snap.counters.is_empty() {
        out.push_str(&format!("{:<32} {:>10}\n", "counter", "value"));
        for (label, value) in &snap.counters {
            out.push_str(&format!("{label:<32} {value:>10}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str(&format!("{:<32} {:>10}\n", "gauge", "value"));
        for (label, value) in &snap.gauges {
            out.push_str(&format!("{label:<32} {value:>10.3}\n"));
        }
    }
    let mut kinds: BTreeMap<&str, usize> = BTreeMap::new();
    for event in &reg.events {
        *kinds.entry(event.kind.as_str()).or_insert(0) += 1;
    }
    if !kinds.is_empty() {
        out.push_str(&format!("{:<32} {:>10}\n", "event kind", "records"));
        for (kind, n) in kinds {
            out.push_str(&format!("{kind:<32} {n:>10}\n"));
        }
    }
    if out.is_empty() {
        out.push_str("(no telemetry recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The registry is process-global; serialize tests that mutate it.
    fn lock_tests() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_primitives_record_nothing() {
        let _g = lock_tests();
        reset();
        set_enabled(false);
        {
            let _t = scoped("t.disabled");
            let _s = span("s.disabled");
            count("c.disabled", 5);
            observe("h.disabled", 1.0);
            record_event("e.disabled", &serde_json::json!({"x": 1}));
        }
        assert_eq!(record_count(), 0);
        assert_eq!(counter_value("c.disabled"), 0);
        assert!(timer_stat("t.disabled").is_none());
        assert!(histogram_summary("h.disabled").is_none());
        assert_eq!(span_count(), 0);
    }

    #[test]
    fn counters_accumulate_monotonically() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        count("c.a", 2);
        count("c.a", 3);
        count("c.b", 1);
        set_enabled(false);
        assert_eq!(counter_value("c.a"), 5);
        assert_eq!(counter_value("c.b"), 1);
    }

    #[test]
    fn nested_scopes_attribute_time_to_their_own_labels() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        {
            let _outer = scoped("t.outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = scoped("t.inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        set_enabled(false);
        let outer = timer_stat("t.outer").expect("outer recorded");
        let inner = timer_stat("t.inner").expect("inner recorded");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        // The inner scope is a strict sub-interval of the outer one.
        assert!(inner.total_ns <= outer.total_ns, "inner {inner:?} vs outer {outer:?}");
        assert!(inner.total_ns > 0);
    }

    #[test]
    fn spans_record_depth_and_feed_timers() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        {
            let _outer = span("sp.outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span("sp.inner");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        set_enabled(false);
        // Spans also aggregate under the same timer labels.
        assert_eq!(timer_stat("sp.outer").expect("outer timer").calls, 1);
        assert_eq!(timer_stat("sp.inner").expect("inner timer").calls, 1);
        let spans = span_records();
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.label == "sp.outer").expect("outer span");
        let inner = spans.iter().find(|s| s.label == "sp.inner").expect("inner span");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.tid, inner.tid);
        // Parent/child timing containment: inner starts at or after outer
        // and ends at or before it.
        assert!(inner.start_us >= outer.start_us);
        let outer_end = outer.start_us as u128 * 1000 + outer.dur_ns as u128;
        let inner_end = inner.start_us as u128 * 1000 + inner.dur_ns as u128;
        // start_us truncates to µs, so allow that much slack on the ends.
        assert!(inner_end <= outer_end + 1000, "inner {inner:?} vs outer {outer:?}");
        assert!(inner.dur_ns <= outer.dur_ns);
    }

    #[test]
    fn span_depth_rebalances_across_sequential_spans() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        {
            let _a = span("sp.first");
        }
        {
            let _b = span("sp.second");
        }
        set_enabled(false);
        let spans = span_records();
        // Both top-level: the first span's drop restored depth to 0.
        assert!(spans.iter().all(|s| s.depth == 0), "{spans:?}");
    }

    #[test]
    fn scope_survives_concurrent_reset_without_recording() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        let guard = scoped("t.racing");
        let sp = span("sp.racing");
        // A reset while guards are live must neither panic their drops nor
        // let the stale measurements leak into the fresh registry.
        reset();
        drop(sp);
        drop(guard);
        set_enabled(false);
        assert!(timer_stat("t.racing").is_none());
        assert!(timer_stat("sp.racing").is_none());
        assert_eq!(span_count(), 0);
        assert_eq!(record_count(), 0);
        // Depth re-balanced even though the span record was discarded.
        set_enabled(true);
        {
            let _s = span("sp.after_reset");
        }
        set_enabled(false);
        assert_eq!(span_records().last().expect("span after reset").depth, 0);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::default();
        assert!(h.quantile(0.5).is_nan());
        for v in 1..=100 {
            h.observe(v as f64);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 100.0);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        // Log-scale buckets are coarse: accept the right power-of-two
        // bucket, and require the quantiles to be ordered and in range.
        assert!((32.0..=64.0).contains(&p50), "p50 {p50}");
        assert!((64.0..=100.0).contains(&p95), "p95 {p95}");
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= 100.0);
        // Degenerate and non-finite inputs.
        let mut d = Histogram::default();
        d.observe(0.0);
        d.observe(-3.0);
        d.observe(f64::NAN);
        d.observe(f64::INFINITY);
        assert_eq!(d.count(), 2); // NaN and Inf ignored
        assert_eq!(d.min(), -3.0);
        assert!(d.quantile(0.99) <= 0.0);
    }

    #[test]
    fn observe_feeds_named_histogram() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        for v in [1.0, 2.0, 4.0, 8.0, 1024.0] {
            observe("h.lat", v);
        }
        set_enabled(false);
        let s = histogram_summary("h.lat").expect("histogram recorded");
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 1024.0);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        assert!(s.p99 <= 1024.0);
    }

    #[test]
    fn jsonl_round_trips_through_serde_json() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        count("c.x", 7);
        {
            let _t = scoped("t.x");
        }
        record_event("epoch", &serde_json::json!({"epoch": 0, "loss": 1.5}));
        set_enabled(false);
        let jsonl = render_jsonl();
        let lines: Vec<serde_json::Value> =
            jsonl.lines().map(|l| serde_json::from_str(l).expect("valid JSON line")).collect();
        assert_eq!(lines.len(), 4); // meta + counter + timer + event
        assert_eq!(lines[0]["type"], "meta");
        assert_eq!(lines[0]["schema"], "enhancenet-telemetry-v1");
        let counter = lines.iter().find(|l| l["type"] == "counter").unwrap();
        assert_eq!(counter["label"], "c.x");
        assert_eq!(counter["value"], 7);
        let timer = lines.iter().find(|l| l["type"] == "timer").unwrap();
        assert_eq!(timer["label"], "t.x");
        assert_eq!(timer["calls"], 1);
        let event = lines.iter().find(|l| l["type"] == "event").unwrap();
        assert_eq!(event["kind"], "epoch");
        assert_eq!(event["payload"]["loss"], 1.5);
    }

    #[test]
    fn jsonl_includes_histogram_and_span_records() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        {
            let _s = span("sp.jsonl");
        }
        observe("h.jsonl", 3.5);
        set_enabled(false);
        let jsonl = render_jsonl();
        let lines: Vec<serde_json::Value> =
            jsonl.lines().map(|l| serde_json::from_str(l).expect("valid JSON line")).collect();
        let hist = lines.iter().find(|l| l["type"] == "histogram").expect("histogram line");
        assert_eq!(hist["label"], "h.jsonl");
        assert_eq!(hist["count"], 1);
        assert!(hist["buckets"].as_array().is_some_and(|b| !b.is_empty()));
        let sp = lines.iter().find(|l| l["type"] == "span").expect("span line");
        assert_eq!(sp["label"], "sp.jsonl");
        assert_eq!(sp["depth"], 0);
        assert!(sp["dur_ns"].as_u64().is_some());
        // The meta header accounts for the new record families.
        assert_eq!(lines[0]["histograms"], 1);
        assert_eq!(lines[0]["spans"], 1);
    }

    #[test]
    fn jsonl_escapes_quotes_newlines_and_non_ascii() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        let payload = serde_json::json!({
            "msg": "line1\nline2 \"quoted\" — naïve 日本語",
            "path": "C:\\tmp\\x",
        });
        record_event("escape.check", &payload);
        count("counter \"with\" quotes\nand newline", 1);
        set_enabled(false);
        let jsonl = render_jsonl();
        // Every rendered line must be exactly one standalone JSON document:
        // embedded newlines in labels/payloads must be escaped, not raw.
        for line in jsonl.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect("each line parses");
            assert!(v["type"].as_str().is_some());
        }
        let lines: Vec<serde_json::Value> =
            jsonl.lines().map(|l| serde_json::from_str(l).unwrap()).collect();
        let event = lines.iter().find(|l| l["type"] == "event").expect("event line");
        assert_eq!(event["payload"]["msg"], "line1\nline2 \"quoted\" — naïve 日本語");
        assert_eq!(event["payload"]["path"], "C:\\tmp\\x");
        let counter = lines.iter().find(|l| l["type"] == "counter").expect("counter line");
        assert_eq!(counter["label"], "counter \"with\" quotes\nand newline");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_depth_args() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        {
            let _outer = span("sp.trace_outer");
            std::thread::sleep(Duration::from_millis(1));
            {
                let _inner = span("sp.trace_inner");
            }
        }
        set_enabled(false);
        let doc: serde_json::Value =
            serde_json::from_str(&render_chrome_trace()).expect("trace parses");
        let events = doc["traceEvents"].as_array().expect("traceEvents array");
        assert_eq!(events.len(), 2);
        for e in events {
            assert_eq!(e["ph"], "X");
            assert_eq!(e["pid"], 1);
            assert!(e["ts"].as_u64().is_some());
            assert!(e["dur"].as_f64().is_some());
            assert!(e["args"]["depth"].as_u64().is_some());
        }
        let depths: Vec<u64> =
            events.iter().map(|e| e["args"]["depth"].as_u64().unwrap()).collect();
        assert!(depths.contains(&0) && depths.contains(&1), "depths {depths:?}");
    }

    #[test]
    fn write_jsonl_creates_parent_dirs() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        count("c.file", 1);
        set_enabled(false);
        let dir = std::env::temp_dir().join("enhancenet-telemetry-test");
        let path = dir.join("nested").join("out.jsonl");
        write_jsonl(&path).expect("write");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.contains("c.file"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_chrome_trace_creates_parent_dirs() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        {
            let _s = span("sp.file");
        }
        set_enabled(false);
        let dir = std::env::temp_dir().join("enhancenet-trace-test");
        let path = dir.join("nested").join("trace.json");
        write_chrome_trace(&path).expect("write");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.contains("traceEvents"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_table_lists_labels() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        count("c.sum", 9);
        {
            let _t = scoped("t.sum");
        }
        observe("h.sum", 2.0);
        record_event("epoch", &serde_json::json!({"epoch": 1}));
        set_enabled(false);
        let table = summary_table();
        assert!(table.contains("c.sum"));
        assert!(table.contains("t.sum"));
        assert!(table.contains("h.sum"));
        assert!(table.contains("epoch"));
    }

    #[test]
    fn summary_table_orders_deterministically() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        {
            // Inject timers directly so total_ns ties are exact.
            let mut reg = registry();
            reg.timers.insert("t.tie_b".to_string(), TimerStat { calls: 1, total_ns: 500 });
            reg.timers.insert("t.tie_a".to_string(), TimerStat { calls: 1, total_ns: 500 });
            reg.timers.insert("t.big".to_string(), TimerStat { calls: 1, total_ns: 9000 });
        }
        set_enabled(false);
        let table = summary_table();
        let pos = |needle: &str| table.find(needle).unwrap_or_else(|| panic!("{needle} in table"));
        // Sorted by total time descending; ties break by ascending label.
        assert!(pos("t.big") < pos("t.tie_a"));
        assert!(pos("t.tie_a") < pos("t.tie_b"));
        assert_eq!(table, summary_table(), "rendering must be stable");
    }

    #[test]
    fn echo_respects_flag() {
        // Behavioral smoke: must not panic either way.
        set_echo(true);
        echo("telemetry echo test line");
        set_echo(false);
        echo("suppressed");
        assert!(!echo_enabled());
    }
}
