//! # enhancenet-telemetry
//!
//! Process-global, low-overhead observability for the EnhanceNet stack:
//! the instrumentation behind Table V's runtime accounting (seconds per
//! training epoch, milliseconds per prediction) and the CI perf-trajectory
//! pipeline.
//!
//! Three primitives feed one global [`Registry`]:
//!
//! * **Scoped timers** — [`scoped`] returns an RAII guard that attributes
//!   the enclosed wall-clock time to a label on drop. Nested scopes each
//!   bill their own label, so `trainer.forward` and an inner
//!   `dfgn.generate` coexist without double bookkeeping.
//! * **Counters** — [`count`] accumulates monotonic `u64` totals (kernel
//!   calls, elements moved, parallel-vs-serial dispatch decisions).
//! * **Events** — [`record_event`] appends a structured record (any
//!   `serde::Serialize` payload), used by the trainer for per-epoch
//!   progress and best-epoch checkpoints.
//!
//! Everything is gated on one process-global [`AtomicBool`]: when telemetry
//! is disabled (the default) every primitive returns after a single relaxed
//! atomic load — no locking, no allocation, no `Instant::now()`. Benchmarks
//! and the inference hot path therefore pay one predictable branch.
//!
//! The registry renders two ways: [`render_jsonl`] (one JSON object per
//! line — `meta`, `counter`, `timer`, and `event` records; the format
//! `scripts/bench_summary` consumes) and [`summary_table`] (a human-aligned
//! table for stderr).
//!
//! ```
//! enhancenet_telemetry::reset();
//! enhancenet_telemetry::set_enabled(true);
//! {
//!     let _t = enhancenet_telemetry::scoped("demo.work");
//!     enhancenet_telemetry::count("demo.items", 3);
//! }
//! let jsonl = enhancenet_telemetry::render_jsonl();
//! assert!(jsonl.lines().count() >= 3);
//! enhancenet_telemetry::set_enabled(false);
//! ```

use serde::Serialize;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Master switch. Relaxed ordering is sufficient: the flag only gates
/// best-effort accounting, never data the computation depends on.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether [`echo`] lines are printed to stderr (the `verbose` sink).
static ECHO: AtomicBool = AtomicBool::new(false);

/// True when telemetry collection is on. One relaxed atomic load — callers
/// may use it to skip label/payload construction entirely.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Turns the human echo sink (stderr) on or off. Independent of
/// [`set_enabled`]: a verbose run prints progress lines even when no JSONL
/// is being collected.
pub fn set_echo(on: bool) {
    ECHO.store(on, Ordering::Relaxed);
}

/// True when [`echo`] prints to stderr.
#[inline]
pub fn echo_enabled() -> bool {
    ECHO.load(Ordering::Relaxed)
}

/// The human progress sink: prints `line` to stderr when echo is enabled.
/// Trainer `verbose` output routes through here so there is exactly one
/// place progress lines leave the process.
pub fn echo(line: &str) {
    if echo_enabled() {
        eprintln!("{line}");
    }
}

/// Aggregate for one timer label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerStat {
    /// Completed scopes recorded under this label.
    pub calls: u64,
    /// Total wall-clock nanoseconds across those scopes.
    pub total_ns: u64,
}

/// One structured event: a kind tag plus an arbitrary JSON payload.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event family, e.g. `"epoch"` or `"best_epoch"`.
    pub kind: String,
    /// Serialized payload fields.
    pub payload: serde_json::Value,
}

/// The process-global store behind the module-level free functions.
#[derive(Debug, Default)]
pub struct Registry {
    timers: BTreeMap<String, TimerStat>,
    counters: BTreeMap<String, u64>,
    events: Vec<Event>,
}

fn registry() -> MutexGuard<'static, Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(Registry::default()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// RAII guard from [`scoped`]; bills elapsed time to its label on drop.
/// When telemetry is disabled the guard is inert (holds no timestamp).
#[must_use = "the timer records on drop; binding to _ drops immediately"]
pub struct Scope {
    inner: Option<(&'static str, Instant)>,
}

/// Starts a scoped wall-clock timer. Disabled path: one atomic load, no
/// allocation, no clock read.
#[inline]
pub fn scoped(label: &'static str) -> Scope {
    if !enabled() {
        return Scope { inner: None };
    }
    Scope { inner: Some((label, Instant::now())) }
}

impl Drop for Scope {
    fn drop(&mut self) {
        if let Some((label, start)) = self.inner.take() {
            let ns = start.elapsed().as_nanos() as u64;
            let mut reg = registry();
            let stat = reg.timers.entry(label.to_string()).or_default();
            stat.calls += 1;
            stat.total_ns += ns;
        }
    }
}

/// Adds `n` to the monotonic counter `label`. Disabled path: one atomic
/// load, nothing else.
#[inline]
pub fn count(label: &str, n: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry();
    match reg.counters.get_mut(label) {
        Some(v) => *v += n,
        None => {
            reg.counters.insert(label.to_string(), n);
        }
    }
}

/// Appends a structured event. The payload is serialized immediately so
/// the caller may hand over borrowed data. No-op (and no serialization)
/// when disabled.
pub fn record_event<T: Serialize>(kind: &str, payload: &T) {
    if !enabled() {
        return;
    }
    let payload = serde_json::to_value(payload).unwrap_or(serde_json::Value::Null);
    registry().events.push(Event { kind: kind.to_string(), payload });
}

/// Current value of a counter (0 when absent). Intended for tests and the
/// summary renderers.
pub fn counter_value(label: &str) -> u64 {
    registry().counters.get(label).copied().unwrap_or(0)
}

/// Aggregate for a timer label, if any scope completed under it.
pub fn timer_stat(label: &str) -> Option<TimerStat> {
    registry().timers.get(label).copied()
}

/// Number of events recorded under `kind`.
pub fn event_count(kind: &str) -> usize {
    registry().events.iter().filter(|e| e.kind == kind).count()
}

/// Total records (timers + counters + events) currently held.
pub fn record_count() -> usize {
    let reg = registry();
    reg.timers.len() + reg.counters.len() + reg.events.len()
}

/// Clears all recorded data (flags are untouched).
pub fn reset() {
    let mut reg = registry();
    reg.timers.clear();
    reg.counters.clear();
    reg.events.clear();
}

/// Renders the registry as JSONL: a `meta` header line, then one line per
/// counter, timer, and event (in that order). Every line is a standalone
/// JSON object with a `"type"` discriminant — the contract
/// `scripts/bench_summary` validates.
pub fn render_jsonl() -> String {
    let reg = registry();
    let mut out = String::new();
    let meta = serde_json::json!({
        "type": "meta",
        "schema": "enhancenet-telemetry-v1",
        "counters": reg.counters.len(),
        "timers": reg.timers.len(),
        "events": reg.events.len(),
    });
    out.push_str(&meta.to_string());
    out.push('\n');
    for (label, value) in &reg.counters {
        let line = serde_json::json!({"type": "counter", "label": label, "value": value});
        out.push_str(&line.to_string());
        out.push('\n');
    }
    for (label, stat) in &reg.timers {
        let line = serde_json::json!({
            "type": "timer",
            "label": label,
            "calls": stat.calls,
            "total_ns": stat.total_ns,
        });
        out.push_str(&line.to_string());
        out.push('\n');
    }
    for event in &reg.events {
        let mut line = serde_json::Map::new();
        line.insert("type".into(), "event".into());
        line.insert("kind".into(), event.kind.clone().into());
        line.insert("payload".into(), event.payload.clone());
        out.push_str(&serde_json::Value::Object(line).to_string());
        out.push('\n');
    }
    out
}

/// Writes [`render_jsonl`] to `path`, creating parent directories.
pub fn write_jsonl(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(render_jsonl().as_bytes())
}

/// Renders a human-readable summary: timers sorted by total time, then
/// counters, then event tallies.
pub fn summary_table() -> String {
    let reg = registry();
    let mut out = String::new();
    if !reg.timers.is_empty() {
        out.push_str(&format!(
            "{:<32} {:>10} {:>12} {:>12}\n",
            "timer", "calls", "total ms", "mean µs"
        ));
        let mut timers: Vec<(&String, &TimerStat)> = reg.timers.iter().collect();
        timers.sort_by_key(|(_, s)| std::cmp::Reverse(s.total_ns));
        for (label, stat) in timers {
            let total_ms = stat.total_ns as f64 / 1e6;
            let mean_us = stat.total_ns as f64 / 1e3 / stat.calls.max(1) as f64;
            out.push_str(&format!(
                "{label:<32} {:>10} {total_ms:>12.3} {mean_us:>12.2}\n",
                stat.calls
            ));
        }
    }
    if !reg.counters.is_empty() {
        out.push_str(&format!("{:<32} {:>10}\n", "counter", "value"));
        for (label, value) in &reg.counters {
            out.push_str(&format!("{label:<32} {value:>10}\n"));
        }
    }
    let mut kinds: BTreeMap<&str, usize> = BTreeMap::new();
    for event in &reg.events {
        *kinds.entry(event.kind.as_str()).or_insert(0) += 1;
    }
    if !kinds.is_empty() {
        out.push_str(&format!("{:<32} {:>10}\n", "event kind", "records"));
        for (kind, n) in kinds {
            out.push_str(&format!("{kind:<32} {n:>10}\n"));
        }
    }
    if out.is_empty() {
        out.push_str("(no telemetry recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The registry is process-global; serialize tests that mutate it.
    fn lock_tests() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_primitives_record_nothing() {
        let _g = lock_tests();
        reset();
        set_enabled(false);
        {
            let _t = scoped("t.disabled");
            count("c.disabled", 5);
            record_event("e.disabled", &serde_json::json!({"x": 1}));
        }
        assert_eq!(record_count(), 0);
        assert_eq!(counter_value("c.disabled"), 0);
        assert!(timer_stat("t.disabled").is_none());
    }

    #[test]
    fn counters_accumulate_monotonically() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        count("c.a", 2);
        count("c.a", 3);
        count("c.b", 1);
        set_enabled(false);
        assert_eq!(counter_value("c.a"), 5);
        assert_eq!(counter_value("c.b"), 1);
    }

    #[test]
    fn nested_scopes_attribute_time_to_their_own_labels() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        {
            let _outer = scoped("t.outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = scoped("t.inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        set_enabled(false);
        let outer = timer_stat("t.outer").expect("outer recorded");
        let inner = timer_stat("t.inner").expect("inner recorded");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        // The inner scope is a strict sub-interval of the outer one.
        assert!(inner.total_ns <= outer.total_ns, "inner {inner:?} vs outer {outer:?}");
        assert!(inner.total_ns > 0);
    }

    #[test]
    fn jsonl_round_trips_through_serde_json() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        count("c.x", 7);
        {
            let _t = scoped("t.x");
        }
        record_event("epoch", &serde_json::json!({"epoch": 0, "loss": 1.5}));
        set_enabled(false);
        let jsonl = render_jsonl();
        let lines: Vec<serde_json::Value> =
            jsonl.lines().map(|l| serde_json::from_str(l).expect("valid JSON line")).collect();
        assert_eq!(lines.len(), 4); // meta + counter + timer + event
        assert_eq!(lines[0]["type"], "meta");
        assert_eq!(lines[0]["schema"], "enhancenet-telemetry-v1");
        let counter = lines.iter().find(|l| l["type"] == "counter").unwrap();
        assert_eq!(counter["label"], "c.x");
        assert_eq!(counter["value"], 7);
        let timer = lines.iter().find(|l| l["type"] == "timer").unwrap();
        assert_eq!(timer["label"], "t.x");
        assert_eq!(timer["calls"], 1);
        let event = lines.iter().find(|l| l["type"] == "event").unwrap();
        assert_eq!(event["kind"], "epoch");
        assert_eq!(event["payload"]["loss"], 1.5);
    }

    #[test]
    fn write_jsonl_creates_parent_dirs() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        count("c.file", 1);
        set_enabled(false);
        let dir = std::env::temp_dir().join("enhancenet-telemetry-test");
        let path = dir.join("nested").join("out.jsonl");
        write_jsonl(&path).expect("write");
        let body = std::fs::read_to_string(&path).expect("read back");
        assert!(body.contains("c.file"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_table_lists_labels() {
        let _g = lock_tests();
        reset();
        set_enabled(true);
        count("c.sum", 9);
        {
            let _t = scoped("t.sum");
        }
        record_event("epoch", &serde_json::json!({"epoch": 1}));
        set_enabled(false);
        let table = summary_table();
        assert!(table.contains("c.sum"));
        assert!(table.contains("t.sum"));
        assert!(table.contains("epoch"));
    }

    #[test]
    fn echo_respects_flag() {
        // Behavioral smoke: must not panic either way.
        set_echo(true);
        echo("telemetry echo test line");
        set_echo(false);
        echo("suppressed");
        assert!(!echo_enabled());
    }
}
