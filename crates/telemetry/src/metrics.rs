//! The live metric store: sharded, lock-striped counters, gauges, and
//! histograms with a consistent, cheap [`MetricsSnapshot`].
//!
//! The original registry kept counters and histograms inside the one
//! process-global `Mutex<Registry>`; fine for post-hoc JSONL dumps, but a
//! live `/metrics` scrape cloning that map would stall every hot-path
//! `count()` behind one lock for the duration of the copy. This module
//! splits the live metrics out into [`SHARD_COUNT`] lock-striped shards:
//!
//! * Each **counter** and **gauge** is an `Arc<AtomicU64>`. The shard lock
//!   is held only for the name → cell lookup (and the one-time insert);
//!   the actual increment/store happens on the atomic *after* the lock is
//!   released, so no lock is ever held across a metric update.
//! * Each **histogram** is an `Arc<Mutex<Histogram>>` of its own. Updates
//!   lock only their histogram; a snapshot locks it just long enough to
//!   copy 80 bucket counts. Copying under the per-histogram lock is what
//!   keeps `count`/`sum`/`buckets` mutually consistent — a snapshot can
//!   never observe a histogram whose bucket total disagrees with its
//!   `count` (no torn totals).
//! * [`snapshot`] walks the shards one at a time: lock a shard, clone its
//!   name → cell maps (pointer clones), unlock, then read the cells. A
//!   concurrent writer is therefore blocked for at most one shard-map
//!   clone or one 80-bucket histogram copy — never for the whole scrape.
//!
//! Consistency model: the snapshot is *per-metric atomic* (counters are
//! single atomic loads, so monotone across successive snapshots;
//! histograms are copied whole) but not globally atomic across metrics —
//! exactly the guarantee Prometheus scrapes assume.
//!
//! A [`crate::reset`] clears the shard maps. A writer that already cloned
//! a cell keeps updating its detached atomic, which the next snapshot no
//! longer sees — the same "racing reset discards the measurement"
//! semantics the RAII guards have.

use crate::{Histogram, HistogramSummary};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of lock stripes. 16 keeps worst-case snapshot pauses at 1/16th
/// of the label space while staying cache-friendly.
pub const SHARD_COUNT: usize = 16;

#[derive(Default)]
struct Shard {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    /// Gauge cells store `f64::to_bits`; a `store` is atomic, so readers
    /// never see a half-written float.
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<Mutex<Histogram>>>,
}

struct Store {
    shards: [Mutex<Shard>; SHARD_COUNT],
}

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(|| Store { shards: std::array::from_fn(|_| Mutex::new(Shard::default())) })
}

/// FNV-1a over the label bytes; stable across runs so tests may reason
/// about stripe assignment.
fn shard_index(label: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % SHARD_COUNT
}

fn shard(label: &str) -> std::sync::MutexGuard<'static, Shard> {
    store().shards[shard_index(label)].lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Fetches (or creates) the counter cell for `label`. The shard lock is
/// released before the caller touches the atomic.
fn counter_cell(label: &str) -> Arc<AtomicU64> {
    let mut guard = shard(label);
    match guard.counters.get(label) {
        Some(cell) => Arc::clone(cell),
        None => {
            let cell = Arc::new(AtomicU64::new(0));
            guard.counters.insert(label.to_string(), Arc::clone(&cell));
            cell
        }
    }
}

fn gauge_cell(label: &str) -> Arc<AtomicU64> {
    let mut guard = shard(label);
    match guard.gauges.get(label) {
        Some(cell) => Arc::clone(cell),
        None => {
            let cell = Arc::new(AtomicU64::new(0.0f64.to_bits()));
            guard.gauges.insert(label.to_string(), Arc::clone(&cell));
            cell
        }
    }
}

fn histogram_cell(label: &str) -> Arc<Mutex<Histogram>> {
    let mut guard = shard(label);
    match guard.histograms.get(label) {
        Some(cell) => Arc::clone(cell),
        None => {
            let cell = Arc::new(Mutex::new(Histogram::default()));
            guard.histograms.insert(label.to_string(), Arc::clone(&cell));
            cell
        }
    }
}

/// Adds `n` to counter `label`. Lock-free after the cell lookup.
pub(crate) fn add(label: &str, n: u64) {
    counter_cell(label).fetch_add(n, Ordering::Relaxed);
}

/// Sets gauge `label` to `value` (last-write-wins level semantics).
pub(crate) fn set_gauge(label: &str, value: f64) {
    gauge_cell(label).store(value.to_bits(), Ordering::Relaxed);
}

/// Records `value` into histogram `label` under its private lock.
pub(crate) fn observe(label: &str, value: f64) {
    let cell = histogram_cell(label);
    let mut h = cell.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    h.observe(value);
}

/// Current counter value (0 when the counter was never touched).
pub(crate) fn counter_value(label: &str) -> u64 {
    let guard = shard(label);
    guard.counters.get(label).map_or(0, |c| c.load(Ordering::Relaxed))
}

/// Current gauge value, if the gauge was ever set.
pub(crate) fn gauge_value(label: &str) -> Option<f64> {
    let guard = shard(label);
    guard.gauges.get(label).map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
}

/// Copy of one histogram, if it exists.
pub(crate) fn histogram(label: &str) -> Option<Histogram> {
    let cell = {
        let guard = shard(label);
        guard.histograms.get(label).map(Arc::clone)
    };
    cell.map(|c| c.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).clone())
}

/// Clears every shard. Writers holding a detached cell keep updating it
/// harmlessly; it is simply no longer reachable from a snapshot.
pub(crate) fn reset() {
    for stripe in &store().shards {
        let mut guard = stripe.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        guard.counters.clear();
        guard.gauges.clear();
        guard.histograms.clear();
    }
}

/// Number of live metric labels (counters + gauges + histograms).
pub(crate) fn label_count() -> usize {
    store()
        .shards
        .iter()
        .map(|stripe| {
            let guard = stripe.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.counters.len() + guard.gauges.len() + guard.histograms.len()
        })
        .sum()
}

/// A point-in-time copy of every counter, gauge, and histogram.
///
/// Cheap to take (see the module docs for the locking discipline) and
/// fully detached: rendering it — JSONL, Prometheus exposition, summary
/// tables — touches no shared state.
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    /// Monotonic counter totals by label.
    pub counters: BTreeMap<String, u64>,
    /// Last-set gauge levels by label.
    pub gauges: BTreeMap<String, f64>,
    /// Full histogram copies (buckets included) by label.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Headline statistics for one captured histogram, if it has samples.
    pub fn histogram_summary(&self, label: &str) -> Option<HistogramSummary> {
        let h = self.histograms.get(label)?;
        if h.count() == 0 {
            return None;
        }
        Some(HistogramSummary {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
        })
    }
}

/// Captures a [`MetricsSnapshot`] without stopping writers.
///
/// Shards are visited one at a time: the shard lock covers only the clone
/// of its name → cell pointer maps; atomic cells are then read and each
/// histogram copied under its own lock. A concurrent `count`/`gauge`/
/// `observe` is delayed by at most one such bounded copy.
pub fn snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for stripe in &store().shards {
        let (counters, gauges, histograms) = {
            let guard = stripe.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            (guard.counters.clone(), guard.gauges.clone(), guard.histograms.clone())
        };
        for (label, cell) in counters {
            snap.counters.insert(label, cell.load(Ordering::Relaxed));
        }
        for (label, cell) in gauges {
            snap.gauges.insert(label, f64::from_bits(cell.load(Ordering::Relaxed)));
        }
        for (label, cell) in histograms {
            let h = cell.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).clone();
            snap.histograms.insert(label, h);
        }
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_index_is_stable_and_in_range() {
        for label in ["serve.request", "serve.latency_ns", "a", ""] {
            let i = shard_index(label);
            assert!(i < SHARD_COUNT);
            assert_eq!(i, shard_index(label), "hash must be deterministic");
        }
    }

    #[test]
    fn snapshot_summary_mirrors_histogram() {
        let mut snap = MetricsSnapshot::default();
        let mut h = Histogram::default();
        for v in [1.0, 2.0, 4.0] {
            h.observe(v);
        }
        snap.histograms.insert("x".into(), h);
        let s = snap.histogram_summary("x").expect("has samples");
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(snap.histogram_summary("missing").is_none());
        snap.histograms.insert("empty".into(), Histogram::default());
        assert!(snap.histogram_summary("empty").is_none());
    }
}
