//! Benchmarks of the graph substrate: adjacency construction,
//! normalization, support building, and tape-level graph convolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enhancenet::gconv::gc_input_dim;
use enhancenet::{graph_conv, GcSupport};
use enhancenet_autodiff::Graph;
use enhancenet_graph::{
    build_supports, gaussian_kernel_adjacency, normalize_rows, pairwise_euclidean, AdjacencyConfig,
    SupportKind,
};
use enhancenet_tensor::TensorRng;
use std::hint::black_box;

fn bench_adjacency_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("adjacency_from_coords");
    for &n in &[50usize, 207] {
        let coords = TensorRng::seed(1).uniform(&[n, 2], 0.0, 50.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let d = pairwise_euclidean(&coords);
                black_box(gaussian_kernel_adjacency(&d, AdjacencyConfig::default()))
            });
        });
    }
    group.finish();
}

fn bench_normalization(c: &mut Criterion) {
    let a = TensorRng::seed(2).uniform(&[207, 207], 0.0, 1.0);
    c.bench_function("normalize_rows_207", |b| b.iter(|| black_box(normalize_rows(&a))));
    c.bench_function("double_transition_supports_207", |b| {
        b.iter(|| black_box(build_supports(&a, SupportKind::DoubleTransition)));
    });
}

fn bench_graph_conv(c: &mut Criterion) {
    // Static vs dynamic supports at the paper's LA size (207 entities).
    let n = 207;
    let (bsz, cin, cout, hops) = (4usize, 16usize, 16usize, 2usize);
    let mut rng = TensorRng::seed(3);
    let a_t = rng.uniform(&[n, n], 0.0, 0.1);
    let x_t = rng.normal(&[bsz, n, cin], 0.0, 1.0);
    let w_t = rng.normal(&[gc_input_dim(cin, 1, hops), cout], 0.0, 0.3);
    let a_dyn_t = rng.uniform(&[bsz, n, n], 0.0, 0.1);

    c.bench_function("graph_conv_static_207", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let a = g.constant(a_t.clone());
            let x = g.constant(x_t.clone());
            let w = g.constant(w_t.clone());
            black_box(graph_conv(&mut g, &[GcSupport::Static(a)], x, w, None, hops))
        });
    });
    c.bench_function("graph_conv_dynamic_207", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let a = g.constant(a_dyn_t.clone());
            let x = g.constant(x_t.clone());
            let w = g.constant(w_t.clone());
            black_box(graph_conv(&mut g, &[GcSupport::Dynamic(a)], x, w, None, hops))
        });
    });
}

fn bench_graph_conv_backward(c: &mut Criterion) {
    let n = 100;
    let (bsz, cin, cout, hops) = (4usize, 16usize, 16usize, 2usize);
    let mut rng = TensorRng::seed(4);
    let a_t = rng.uniform(&[n, n], 0.0, 0.1);
    let x_t = rng.normal(&[bsz, n, cin], 0.0, 1.0);
    let w_t = rng.normal(&[gc_input_dim(cin, 1, hops), cout], 0.0, 0.3);
    c.bench_function("graph_conv_fwd_bwd_100", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let a = g.constant(a_t.clone());
            let x = g.constant(x_t.clone());
            let w = g.constant(w_t.clone());
            let y = graph_conv(&mut g, &[GcSupport::Static(a)], x, w, None, hops);
            let loss = g.sum_all(y);
            g.backward(loss);
            black_box(g.grad(w).is_some())
        });
    });
}

criterion_group!(
    benches,
    bench_adjacency_construction,
    bench_normalization,
    bench_graph_conv,
    bench_graph_conv_backward,
);
criterion_main!(benches);
