//! Forward-only (prediction) cost of the plugins — Table V's "P (ms)"
//! story: base vs D- vs DA- vs D-DA- variants, plus the effect of the
//! DFGN prediction-phase filter cache and the DAMGN ablation pieces.

use criterion::{criterion_group, criterion_main, Criterion};
use enhancenet::{Damgn, DamgnConfig, Dfgn, DfgnConfig, Forecaster, ForwardCtx};
use enhancenet_autodiff::{Graph, ParamStore};
use enhancenet_bench::{bench_dataset, bench_dims, bench_wavenet_config};
use enhancenet_models::{GraphMode, GruSeq2Seq, TemporalMode, WaveNet};
use enhancenet_tensor::TensorRng;
use std::hint::black_box;

fn predict_bench(c: &mut Criterion, name: &str, model: Box<dyn Forecaster>) {
    let (data, _) = bench_dataset();
    let x = data.input_window(0).unsqueeze(0);
    let mut rng = TensorRng::seed(1);
    c.bench_function(name, |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let mut ctx = ForwardCtx::eval(&mut rng);
            let y = model.forward(&mut g, &x, &mut ctx);
            black_box(g.value(y).clone())
        });
    });
    // The same forward through the compiled inference plan (`predict`
    // compiles on first call, then executes against the warm arena).
    let mut out = enhancenet_tensor::Tensor::default();
    model.predict_into(&x, &mut out).unwrap();
    c.bench_function(format!("{name}_plan"), |b| {
        b.iter(|| {
            model.predict_into(&x, &mut out).unwrap();
            black_box(&out);
        });
    });
}

/// Prediction latency across the plugin matrix (paper: "the use of DFGN
/// and DAMGN does not affect the usability in real-time predictions").
fn bench_prediction_matrix(c: &mut Criterion) {
    let (_, adjacency) = bench_dataset();
    let dfgn = DfgnConfig::default();
    let wn = bench_wavenet_config();

    predict_bench(
        c,
        "predict/RNN",
        Box::new(GruSeq2Seq::rnn(bench_dims(16), 2, TemporalMode::Shared, 1)),
    );
    predict_bench(
        c,
        "predict/D-RNN_cached",
        Box::new(GruSeq2Seq::rnn(bench_dims(16), 2, TemporalMode::Distinct(dfgn), 1)),
    );
    predict_bench(
        c,
        "predict/GRNN",
        Box::new(GruSeq2Seq::grnn(
            bench_dims(16),
            2,
            TemporalMode::Shared,
            GraphMode::paper_static(),
            &adjacency,
            1,
        )),
    );
    predict_bench(
        c,
        "predict/DA-GRNN",
        Box::new(GruSeq2Seq::grnn(
            bench_dims(16),
            2,
            TemporalMode::Shared,
            GraphMode::paper_dynamic(),
            &adjacency,
            1,
        )),
    );
    predict_bench(
        c,
        "predict/TCN",
        Box::new(WaveNet::tcn(bench_dims(16), wn.clone(), TemporalMode::Shared, 1)),
    );
    predict_bench(
        c,
        "predict/DA-GTCN",
        Box::new(WaveNet::gtcn(
            bench_dims(16),
            wn,
            TemporalMode::Shared,
            GraphMode::paper_dynamic(),
            &adjacency,
            1,
        )),
    );
}

/// The raw generator cost: DFGN uncached vs served from the cache.
fn bench_dfgn_generation(c: &mut Criterion) {
    let mut store = ParamStore::new();
    let mut rng = TensorRng::seed(2);
    // LA-sized: 207 entities, GRU filters for C = 2, C' = 16.
    let o = enhancenet::gru_filter_dim(2, 16);
    let dfgn = Dfgn::new(&mut store, &mut rng, "bench", 207, o, DfgnConfig::default());
    c.bench_function("dfgn_generate_207_uncached", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let y = dfgn.generate(&mut g, &store);
            black_box(g.value(y).clone())
        });
    });
    let cache = enhancenet::FilterCache::new();
    c.bench_function("dfgn_generate_207_cached", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let y = dfgn.generate_cached(&mut g, &store, &cache, false);
            black_box(g.value(y).clone())
        });
    });
}

/// DAMGN's per-timestep pieces: static B (Eq. 15) vs dynamic C_t (Eq. 16)
/// vs the full combined A' (Eq. 13) — "only a few more matrix
/// multiplications" (§VI-B4).
fn bench_damgn_pieces(c: &mut Criterion) {
    let n = 207;
    let mut store = ParamStore::new();
    let mut rng = TensorRng::seed(3);
    let damgn = Damgn::new(&mut store, &mut rng, "bench", n, 1, DamgnConfig::default());
    let x_t = rng.normal(&[4, n, 1], 0.0, 1.0);
    let a_t = rng.uniform(&[n, n], 0.0, 0.1);

    c.bench_function("damgn_static_B_207", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let y = damgn.static_b(&mut g, &store);
            black_box(g.value(y).clone())
        });
    });
    c.bench_function("damgn_dynamic_C_207", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let x = g.constant(x_t.clone());
            let y = damgn.dynamic_c(&mut g, &store, x);
            black_box(g.value(y).clone())
        });
    });
    c.bench_function("damgn_combined_Aprime_207", |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let a = g.constant(a_t.clone());
            let x = g.constant(x_t.clone());
            let y = damgn.combined(&mut g, &store, a, x);
            black_box(g.value(y).clone())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_prediction_matrix, bench_dfgn_generation, bench_damgn_pieces
}
criterion_main!(benches);
