//! Epoch throughput of the sharded data-parallel trainer at 1/2/4/8
//! shards, on a GRU host and a WaveNet host.
//!
//! The engine is shard-count invariant bit for bit, so these groups
//! measure pure scheduling: the same windows, graphs, and float operations
//! at every `K`, distributed over `K` worker threads. The README's
//! Performance section quotes the resulting scaling table; the PR
//! acceptance floor is ≥1.5× epoch throughput at 4 shards.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enhancenet::{Forecaster, TrainConfig, Trainer};
use enhancenet_bench::{bench_dataset, bench_dims, bench_wavenet_config};
use enhancenet_models::{GruSeq2Seq, TemporalMode, WaveNet};
use std::hint::black_box;

fn shard_config(shards: usize) -> TrainConfig {
    TrainConfig::builder()
        .epochs(1)
        .batch_size(8)
        .max_batches_per_epoch(Some(6))
        .max_eval_batches(Some(1))
        .data_parallel(shards)
        .build()
        .expect("bench config is valid")
}

fn bench_host(c: &mut Criterion, host: &str, mut model: Box<dyn Forecaster>) {
    let (data, _) = bench_dataset();
    let mut group = c.benchmark_group(format!("shard_scaling/{host}"));
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(shards), &shards, |b, &shards| {
            let trainer = Trainer::new(shard_config(shards));
            b.iter(|| black_box(trainer.train(model.as_mut(), &data)));
        });
    }
    group.finish();
}

fn bench_shard_scaling(c: &mut Criterion) {
    bench_host(c, "GRU", Box::new(GruSeq2Seq::rnn(bench_dims(16), 2, TemporalMode::Shared, 1)));
    bench_host(
        c,
        "WaveNet",
        Box::new(WaveNet::tcn(bench_dims(16), bench_wavenet_config(), TemporalMode::Shared, 1)),
    );
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
