//! One full training step (forward + backward + Adam update) per model
//! family — the per-batch unit behind Table V's "T (s)" column.

use criterion::{criterion_group, criterion_main, Criterion};
use enhancenet::{Forecaster, ForwardCtx};
use enhancenet_autodiff::Graph;
use enhancenet_bench::{bench_dataset, bench_dims, bench_wavenet_config};
use enhancenet_data::BatchIterator;
use enhancenet_models::{GraphMode, GruSeq2Seq, LstmSeq2Seq, Stgcn, TemporalMode, WaveNet};
use enhancenet_nn::optim::{Adam, Optimizer};
use enhancenet_tensor::TensorRng;
use std::hint::black_box;

fn train_step_bench(c: &mut Criterion, name: &str, mut model: Box<dyn Forecaster>) {
    let (data, _) = bench_dataset();
    let batch = BatchIterator::sequential(&data, 0..4, 4).next().expect("one batch");
    let mut adam = Adam::new();
    let mut rng = TensorRng::seed(1);
    c.bench_function(name, |b| {
        b.iter(|| {
            let mut g = Graph::new();
            let pred = {
                let mut ctx = ForwardCtx::train(&mut rng, &batch.y_scaled, 0.5);
                model.forward(&mut g, &batch.x, &mut ctx)
            };
            let mask = batch.y_raw.map(|v| if v != 0.0 { 1.0 } else { 0.0 });
            let loss = g.masked_mae(pred, &batch.y_scaled, &mask);
            g.backward(loss);
            model.store_mut().zero_grad();
            g.write_grads(model.store_mut());
            adam.step(model.store_mut(), 1e-3);
            black_box(g.value(loss).item())
        });
    });
}

fn bench_model_steps(c: &mut Criterion) {
    let (_, adjacency) = bench_dataset();
    let dfgn = enhancenet::DfgnConfig::default();
    let wn = bench_wavenet_config();

    train_step_bench(
        c,
        "train_step/RNN",
        Box::new(GruSeq2Seq::rnn(bench_dims(16), 2, TemporalMode::Shared, 1)),
    );
    train_step_bench(
        c,
        "train_step/D-RNN",
        Box::new(GruSeq2Seq::rnn(bench_dims(12), 2, TemporalMode::Distinct(dfgn), 1)),
    );
    train_step_bench(
        c,
        "train_step/GRNN",
        Box::new(GruSeq2Seq::grnn(
            bench_dims(16),
            2,
            TemporalMode::Shared,
            GraphMode::paper_static(),
            &adjacency,
            1,
        )),
    );
    train_step_bench(
        c,
        "train_step/D-DA-GRNN",
        Box::new(GruSeq2Seq::grnn(
            bench_dims(12),
            2,
            TemporalMode::Distinct(dfgn),
            GraphMode::paper_dynamic(),
            &adjacency,
            1,
        )),
    );
    train_step_bench(
        c,
        "train_step/TCN",
        Box::new(WaveNet::tcn(bench_dims(16), wn.clone(), TemporalMode::Shared, 1)),
    );
    train_step_bench(
        c,
        "train_step/D-DA-GTCN",
        Box::new(WaveNet::gtcn(
            bench_dims(12),
            wn.clone(),
            TemporalMode::Distinct(dfgn),
            GraphMode::paper_dynamic(),
            &adjacency,
            1,
        )),
    );
    train_step_bench(c, "train_step/LSTM", Box::new(LstmSeq2Seq::new(bench_dims(16), 2, 1)));
    train_step_bench(c, "train_step/STGCN", Box::new(Stgcn::new(bench_dims(16), 2, &adjacency, 1)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_model_steps
}
criterion_main!(benches);
