//! Microbenchmarks of the tensor substrate primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enhancenet_tensor::{Tensor, TensorRng};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = TensorRng::seed(1).normal(&[n, n], 0.0, 1.0);
        let b = TensorRng::seed(2).normal(&[n, n], 0.0, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

fn bench_gemm_model_shapes(c: &mut Criterion) {
    // Square adjacency products at METR-LA scale (N = 207): the dynamic-graph
    // plugin multiplies [N, N] matrices in all three orientations — forward
    // (nn) plus the two transpose-fused gradient kernels (tn, nt).
    let n = 207usize;
    let a = TensorRng::seed(20).normal(&[n, n], 0.0, 1.0);
    let b = TensorRng::seed(21).normal(&[n, n], 0.0, 1.0);
    let mut group = c.benchmark_group("gemm_adjacency_207");
    group.bench_function("nn", |bench| bench.iter(|| black_box(a.matmul(&b))));
    group.bench_function("tn", |bench| bench.iter(|| black_box(a.matmul_tn(&b))));
    group.bench_function("nt", |bench| bench.iter(|| black_box(a.matmul_nt(&b))));
    group.finish();

    // RNN hidden projection with batch and entities flattened into rows:
    // [B*N, C] x [C, C] forward, the tn weight gradient ([B*N, C]ᵀ · gy) and
    // the nt input gradient (gy · Wᵀ).
    let (rows, c_hidden) = (8 * 207, 64usize);
    let x = TensorRng::seed(22).normal(&[rows, c_hidden], 0.0, 1.0);
    let w = TensorRng::seed(23).normal(&[c_hidden, c_hidden], 0.0, 1.0);
    let gy = TensorRng::seed(24).normal(&[rows, c_hidden], 0.0, 1.0);
    let mut group = c.benchmark_group("gemm_rnn_hidden_1656x64");
    group.bench_function("nn_forward", |bench| bench.iter(|| black_box(x.matmul(&w))));
    group.bench_function("tn_weight_grad", |bench| bench.iter(|| black_box(x.matmul_tn(&gy))));
    group.bench_function("nt_input_grad", |bench| bench.iter(|| black_box(gy.matmul_nt(&w))));
    group.finish();

    // WaveNet channel mixing: a rank-4 signal [B, N, T, C] against a shared
    // [C, C] filter through the fold-and-multiply broadcast kernel, plus its
    // transpose-fused nt twin (the input gradient).
    let sig = TensorRng::seed(25).normal(&[8, 207, 12, 32], 0.0, 1.0);
    let filt = TensorRng::seed(26).normal(&[32, 32], 0.0, 1.0);
    let mut group = c.benchmark_group("gemm_wavenet_channels_8x207x12x32");
    group.bench_function("broadcast_right", |bench| {
        bench.iter(|| black_box(sig.matmul_broadcast_right(&filt)));
    });
    group.bench_function("broadcast_right_nt", |bench| {
        bench.iter(|| black_box(sig.matmul_broadcast_right_nt(&filt)));
    });
    group.finish();
}

fn bench_bmm(c: &mut Criterion) {
    // The per-entity filter pattern: [N, B, C] x [N, C, C'].
    let x = TensorRng::seed(3).normal(&[200, 8, 16], 0.0, 1.0);
    let w = TensorRng::seed(4).normal(&[200, 16, 16], 0.0, 1.0);
    c.bench_function("bmm_per_entity_200x8x16", |b| {
        b.iter(|| black_box(x.bmm(&w)));
    });
    // Transpose-fused batched gradients over the same per-entity shapes:
    // bmm_tn is the weight gradient (xᵀ · gy), bmm_nt the input gradient.
    let gy = TensorRng::seed(12).normal(&[200, 8, 16], 0.0, 1.0);
    c.bench_function("bmm_tn_per_entity_200x8x16", |b| {
        b.iter(|| black_box(x.bmm_tn(&gy)));
    });
    c.bench_function("bmm_nt_per_entity_200x8x16", |b| {
        b.iter(|| black_box(gy.bmm_nt(&w)));
    });

    // Attention-shaped scores: [B, N, C'] x [B, N, C']ᵀ per batch → [B, N, N].
    // Unlike the per-entity shapes above (2048 madds per batch entry — below
    // PACK_MIN_WORK, served by the direct loops), each 207×64×207 batch entry
    // is deep into blocked-engine territory, so this is the bmm_nt bench that
    // actually exercises packing + the SIMD micro-kernel dispatch.
    let q = TensorRng::seed(13).normal(&[8, 207, 64], 0.0, 1.0);
    let kmat = TensorRng::seed(14).normal(&[8, 207, 64], 0.0, 1.0);
    c.bench_function("bmm_nt_attention_8x207x64", |b| {
        b.iter(|| black_box(q.bmm_nt(&kmat)));
    });
}

fn bench_broadcast_left(c: &mut Criterion) {
    // The graph-convolution pattern: [N, N] x [B, N, C].
    let a = TensorRng::seed(5).normal(&[200, 200], 0.0, 1.0);
    let x = TensorRng::seed(6).normal(&[8, 200, 16], 0.0, 1.0);
    c.bench_function("gc_diffusion_200n_8b_16c", |b| {
        b.iter(|| black_box(a.matmul_broadcast_left(&x)));
    });
}

fn bench_softmax(c: &mut Criterion) {
    let x = TensorRng::seed(7).normal(&[8, 200, 200], 0.0, 1.0);
    c.bench_function("softmax_rows_8x200x200", |b| {
        b.iter(|| black_box(x.softmax(-1)));
    });
}

fn bench_elementwise(c: &mut Criterion) {
    let x = TensorRng::seed(8).normal(&[64, 1024], 0.0, 1.0);
    let row = TensorRng::seed(9).normal(&[1024], 0.0, 1.0);
    c.bench_function("sigmoid_64x1024", |b| b.iter(|| black_box(x.sigmoid())));
    c.bench_function("broadcast_add_row_64x1024", |b| {
        b.iter(|| black_box(x.add_t(&row)));
    });
    c.bench_function("same_shape_mul_64x1024", |b| {
        let y = x.map(|v| v * 0.5);
        b.iter(|| black_box(x.mul_t(&y)));
    });
}

fn bench_reductions(c: &mut Criterion) {
    let x = TensorRng::seed(10).normal(&[64, 1024], 0.0, 1.0);
    c.bench_function("sum_axis0_64x1024", |b| b.iter(|| black_box(x.sum_axis(0))));
    c.bench_function("reduce_to_shape_64x1024_to_row", |b| {
        b.iter(|| black_box(x.reduce_to_shape(&[1024])));
    });
}

fn bench_shape_ops(c: &mut Criterion) {
    let x = TensorRng::seed(11).normal(&[8, 20, 12, 32], 0.0, 1.0);
    c.bench_function("permute_4d_8x20x12x32", |b| {
        b.iter(|| black_box(x.permute(&[1, 0, 2, 3])));
    });
    c.bench_function("concat_feature_axis", |b| {
        b.iter(|| black_box(Tensor::concat(&[&x, &x, &x], -1)));
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_gemm_model_shapes,
    bench_bmm,
    bench_broadcast_left,
    bench_softmax,
    bench_elementwise,
    bench_reductions,
    bench_shape_ops,
);
criterion_main!(benches);
