//! Serving-path latency, LA-shaped (207 entities, 12 -> 12):
//!
//! * `round_trip_batch1` vs `direct_predict` — the full
//!   [`ForecastService`] round-trip (queue, worker thread, scaler
//!   inverse) must not regress against a bare `predict` call for a lone
//!   request.
//! * `microbatch{8,32}` vs `sequential{8,32}` — N concurrent submissions
//!   answered by one batched forward pass vs N sequential `predict`
//!   calls, on two host families (GRU and WaveNet).
//! * `plan_predict` vs `tape_predict` — the compiled-plan serving path
//!   (`predict`, arena execution) against the define-by-run reference
//!   (`predict_tape`, fresh graph per call) on both hosts.
//!
//! p50/p95 percentile tables (burst sizes 1/8/32, then plan vs tape) are
//! printed before the Criterion runs. Set
//! `ENHANCENET_PLAN_TELEMETRY_OUT=<path>` to also record the plan/tape
//! latency samples as telemetry histograms and dump them as JSONL —
//! `scripts/bench_summary` turns that into `BENCH_serving_plan.json`.

use criterion::{criterion_group, Criterion};
use enhancenet::prelude::*;
use enhancenet_models::{GruSeq2Seq, ModelDims, TemporalMode, WaveNet, WaveNetConfig};
use enhancenet_tensor::{Tensor, TensorRng};
use std::hint::black_box;
use std::time::{Duration, Instant};

const LA_N: usize = 207;

fn la_dims(hidden: usize) -> ModelDims {
    ModelDims { num_entities: LA_N, in_features: 1, hidden, input_len: 12, output_len: 12 }
}

fn la_scaler() -> StandardScaler {
    let mut rng = TensorRng::seed(5);
    let history = rng.normal(&[64, LA_N, 1], 60.0, 8.0);
    StandardScaler::fit(&history, 48).unwrap()
}

fn gru_host() -> Box<dyn Forecaster + Send> {
    Box::new(GruSeq2Seq::rnn(la_dims(16), 1, TemporalMode::Shared, 1))
}

fn wavenet_host() -> Box<dyn Forecaster + Send> {
    let config = WaveNetConfig {
        dilations: vec![1, 2, 1, 2, 1, 2, 1, 2],
        kernel: 2,
        end_hidden: 32,
        dropout: 0.3,
    };
    Box::new(WaveNet::tcn(la_dims(16), config, TemporalMode::Shared, 1))
}

fn la_service(
    model: Box<dyn Forecaster + Send>,
    max_batch: usize,
    max_wait: Duration,
) -> ForecastService {
    ServeConfig::builder()
        .max_batch(max_batch)
        .max_wait(max_wait)
        .queue_capacity(128)
        .deadline(Duration::from_secs(30))
        .target_feature(0)
        .spawn(model, la_scaler())
        .unwrap()
}

fn la_windows(count: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = TensorRng::seed(seed);
    (0..count).map(|_| rng.normal(&[12, LA_N, 1], 0.0, 1.0)).collect()
}

/// Burst of `batch` submissions answered through the micro-batch worker.
fn burst(svc: &ForecastService, windows: &[Tensor]) {
    let pendings: Vec<_> = windows.iter().map(|w| svc.submit(w).unwrap()).collect();
    for pending in pendings {
        black_box(pending.wait(Duration::from_secs(30)).unwrap());
    }
}

/// Lone-request round trip (ingested state, full raw-scale API) vs a bare
/// `predict` on the identical scaled window.
fn bench_single_round_trip(c: &mut Criterion) {
    let mut svc = la_service(gru_host(), 1, Duration::ZERO);
    let mut rng = TensorRng::seed(7);
    for t in 0..12 {
        let row = rng.normal(&[LA_N], 60.0, 8.0);
        svc.ingest_row(t, row.data()).unwrap();
    }
    c.bench_function("serve/round_trip_batch1_RNN_207", |b| {
        b.iter(|| black_box(svc.forecast().unwrap()));
    });

    let direct = gru_host();
    let scaled = la_scaler().transform(&svc.state().window().unwrap()).unwrap();
    c.bench_function("serve/direct_predict_RNN_207", |b| {
        b.iter(|| black_box(direct.predict(&scaled).unwrap()));
    });
}

fn bench_micro_batching_host(
    c: &mut Criterion,
    name: &str,
    make: &dyn Fn() -> Box<dyn Forecaster + Send>,
) {
    for &batch in &[8usize, 32] {
        let windows = la_windows(batch, 9);
        let svc = la_service(make(), batch, Duration::from_millis(20));
        c.bench_function(format!("serve/microbatch{batch}_{name}_207"), |b| {
            b.iter(|| burst(&svc, &windows));
        });
        let direct = make();
        c.bench_function(format!("serve/sequential{batch}_{name}_207"), |b| {
            b.iter(|| {
                for window in &windows {
                    black_box(direct.predict(window).unwrap());
                }
            });
        });
        svc.shutdown(ShutdownMode::Drain);
    }
}

fn bench_micro_batching(c: &mut Criterion) {
    bench_micro_batching_host(c, "RNN", &gru_host);
    bench_micro_batching_host(c, "TCN", &wavenet_host);
}

/// Compiled plan vs tape on a bare rank-3 `predict` — the serving fast
/// path this bench file exists to defend.
type HostFactory = fn() -> Box<dyn Forecaster + Send>;

fn bench_plan_vs_tape(c: &mut Criterion) {
    for (name, make) in [("RNN", gru_host as HostFactory), ("TCN", wavenet_host as HostFactory)] {
        let model = make();
        let window = &la_windows(1, 13)[0];
        let mut out = Tensor::default();
        model.predict_into(window, &mut out).unwrap(); // compile outside the timer
        c.bench_function(format!("serve/plan_predict_{name}_207"), |b| {
            b.iter(|| {
                model.predict_into(window, &mut out).unwrap();
                black_box(&out);
            });
        });
        c.bench_function(format!("serve/tape_predict_{name}_207"), |b| {
            b.iter(|| black_box(model.predict_tape(window).unwrap()));
        });
    }
}

/// Explicit burst-latency percentiles (the SLO view Criterion's summary
/// does not give directly).
fn percentile_report() {
    println!("serve burst latency (GRU host, {LA_N} entities), 50 bursts each:");
    for &batch in &[1usize, 8, 32] {
        let windows = la_windows(batch, 11);
        let svc = la_service(gru_host(), batch.max(1), Duration::from_millis(20));
        // Warm-up burst so thread spawn and first-tape costs are excluded.
        burst(&svc, &windows);
        let mut samples: Vec<Duration> = (0..50)
            .map(|_| {
                let started = Instant::now();
                burst(&svc, &windows);
                started.elapsed()
            })
            .collect();
        samples.sort();
        let p50 = samples[samples.len() / 2];
        let p95 = samples[samples.len() * 95 / 100];
        println!(
            "  batch={batch:<3} p50 {:>8.3} ms   p95 {:>8.3} ms   per-window p50 {:>8.3} ms",
            p50.as_secs_f64() * 1e3,
            p95.as_secs_f64() * 1e3,
            p50.as_secs_f64() * 1e3 / batch as f64,
        );
        svc.shutdown(ShutdownMode::Drain);
    }
}

/// Plan-vs-tape percentiles on a bare `predict`, per host. With
/// `ENHANCENET_PLAN_TELEMETRY_OUT=<path>` the samples are also recorded
/// as `plan.predict_ns.*` / `plan.tape_ns.*` histograms and dumped as
/// telemetry JSONL for `scripts/bench_summary`.
fn plan_vs_tape_report() {
    let telemetry_out = std::env::var_os("ENHANCENET_PLAN_TELEMETRY_OUT");
    if telemetry_out.is_some() {
        enhancenet_telemetry::set_enabled(true);
    }
    println!("plan vs tape predict latency ({LA_N} entities), 50 calls each:");
    let hosts: [(&str, HostFactory, &str, &str); 2] = [
        ("RNN", gru_host, "plan.predict_ns.RNN", "plan.tape_ns.RNN"),
        ("TCN", wavenet_host, "plan.predict_ns.TCN", "plan.tape_ns.TCN"),
    ];
    for (name, make, plan_label, tape_label) in hosts {
        let model = make();
        let window = &la_windows(1, 13)[0];
        let mut out = Tensor::default();
        // Compile + warm the arena and scratch pool outside the samples.
        for _ in 0..3 {
            model.predict_into(window, &mut out).unwrap();
        }
        let measure = |label: &str, f: &mut dyn FnMut()| -> (Duration, Duration) {
            let mut samples: Vec<Duration> = (0..50)
                .map(|_| {
                    let started = Instant::now();
                    f();
                    let elapsed = started.elapsed();
                    enhancenet_telemetry::observe(label, elapsed.as_nanos() as f64);
                    elapsed
                })
                .collect();
            samples.sort();
            (samples[samples.len() / 2], samples[samples.len() * 95 / 100])
        };
        let (plan_p50, plan_p95) = measure(plan_label, &mut || {
            model.predict_into(window, &mut out).unwrap();
            black_box(&out);
        });
        let (tape_p50, tape_p95) = measure(tape_label, &mut || {
            black_box(model.predict_tape(window).unwrap());
        });
        println!(
            "  {name:<4} plan p50 {:>8.3} ms  p95 {:>8.3} ms   tape p50 {:>8.3} ms  p95 {:>8.3} ms   speedup p50 {:.2}x",
            plan_p50.as_secs_f64() * 1e3,
            plan_p95.as_secs_f64() * 1e3,
            tape_p50.as_secs_f64() * 1e3,
            tape_p95.as_secs_f64() * 1e3,
            tape_p50.as_secs_f64() / plan_p50.as_secs_f64(),
        );
    }
    if let Some(path) = telemetry_out {
        let path = std::path::PathBuf::from(path);
        enhancenet_telemetry::write_jsonl(&path).expect("telemetry JSONL is writable");
        println!("plan/tape telemetry written to {}", path.display());
        enhancenet_telemetry::set_enabled(false);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_single_round_trip, bench_micro_batching, bench_plan_vs_tape
}

fn main() {
    percentile_report();
    plan_vs_tape_report();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
