//! Overhead of the telemetry primitives: the disabled fast path (one
//! relaxed atomic load — what every kernel call pays in production) vs.
//! the enabled path (mutexed registry update), and a small instrumented
//! matmul with telemetry off vs. on. Also covers the hierarchical span
//! guard and histogram `observe` added for run introspection.

use criterion::{criterion_group, criterion_main, Criterion};
use enhancenet_tensor::TensorRng;
use std::hint::black_box;

fn bench_telemetry(c: &mut Criterion) {
    enhancenet_telemetry::set_enabled(false);
    c.bench_function("telemetry/disabled/scoped+count", |b| {
        b.iter(|| {
            let _t = enhancenet_telemetry::scoped(black_box("bench.scope"));
            enhancenet_telemetry::count(black_box("bench.counter"), 1);
        });
    });

    enhancenet_telemetry::set_enabled(true);
    c.bench_function("telemetry/enabled/scoped+count", |b| {
        b.iter(|| {
            let _t = enhancenet_telemetry::scoped(black_box("bench.scope"));
            enhancenet_telemetry::count(black_box("bench.counter"), 1);
        });
    });
    enhancenet_telemetry::set_enabled(false);
    enhancenet_telemetry::reset();

    c.bench_function("telemetry/disabled/span+observe", |b| {
        b.iter(|| {
            let _s = enhancenet_telemetry::span(black_box("bench.span"));
            enhancenet_telemetry::observe(black_box("bench.histogram"), black_box(42.0));
        });
    });
    enhancenet_telemetry::set_enabled(true);
    c.bench_function("telemetry/enabled/span+observe", |b| {
        b.iter(|| {
            let _s = enhancenet_telemetry::span(black_box("bench.span"));
            enhancenet_telemetry::observe(black_box("bench.histogram"), black_box(42.0));
        });
    });
    enhancenet_telemetry::set_enabled(false);
    enhancenet_telemetry::reset();

    let mut rng = TensorRng::seed(7);
    let a = rng.normal(&[64, 64], 0.0, 1.0);
    let b_mat = rng.normal(&[64, 64], 0.0, 1.0);
    c.bench_function("telemetry/matmul64/disabled", |b| {
        b.iter(|| black_box(a.matmul(&b_mat)));
    });
    enhancenet_telemetry::set_enabled(true);
    c.bench_function("telemetry/matmul64/enabled", |b| {
        b.iter(|| black_box(a.matmul(&b_mat)));
    });
    enhancenet_telemetry::set_enabled(false);
    enhancenet_telemetry::reset();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
