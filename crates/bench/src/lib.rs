//! # enhancenet-bench
//!
//! Shared fixtures for the Criterion benchmarks. The benches mirror the
//! paper's runtime study (Table V) at micro scale:
//!
//! * `tensor_ops` — the substrate primitives (matmul, bmm, softmax,
//!   broadcasting) the models are built from,
//! * `graph_ops` — adjacency construction, normalization and graph
//!   convolution,
//! * `model_step` — one training step (forward + backward + update) per
//!   model family, the per-batch unit of Table V's "T (s)" column,
//! * `plugin_overhead` — forward-only cost of the plugins: base vs `D-` vs
//!   `DA-` vs `D-DA-` variants, and the DFGN prediction-phase cache
//!   (Table V's "P (ms)" column).

use enhancenet_data::traffic::{generate_traffic, TrafficConfig};
use enhancenet_data::WindowDataset;
use enhancenet_graph::{gaussian_kernel_adjacency, AdjacencyConfig};
use enhancenet_tensor::Tensor;

/// Benchmark problem size: entities.
pub const BENCH_N: usize = 20;
/// Benchmark problem size: batch.
pub const BENCH_B: usize = 4;

/// A small windowed traffic dataset plus its adjacency, shared by the
/// model-level benches.
pub fn bench_dataset() -> (WindowDataset, Tensor) {
    let series = generate_traffic(&TrafficConfig::tiny(BENCH_N, 2));
    let adjacency = gaussian_kernel_adjacency(&series.distances, AdjacencyConfig::default());
    (WindowDataset::from_series(&series, 12, 12).unwrap(), adjacency)
}

/// Standard model dims for the benches.
pub fn bench_dims(hidden: usize) -> enhancenet_models::ModelDims {
    enhancenet_models::ModelDims {
        num_entities: BENCH_N,
        in_features: 1,
        hidden,
        input_len: 12,
        output_len: 12,
    }
}

/// A compact WaveNet config that still covers the 12-step window.
pub fn bench_wavenet_config() -> enhancenet_models::WaveNetConfig {
    enhancenet_models::WaveNetConfig {
        dilations: vec![1, 2, 1, 2, 1, 2, 1, 2],
        kernel: 2,
        end_hidden: 32,
        dropout: 0.3,
    }
}
