//! Regenerates the README's shard-scaling table: epoch throughput of the
//! data-parallel trainer at 1/2/4/8 shards on a GRU host and a WaveNet
//! host.
//!
//! ```sh
//! cargo run --release -p enhancenet-bench --bin shard_scaling_report
//! ```
//!
//! The engine is shard-count invariant bit for bit, so every row runs the
//! same float work; the speedup column is pure scheduling and tracks the
//! machine's core count. Run on a multi-core box to reproduce the scaling
//! the README quotes — a single-core container pins every row near 1.0×.

use enhancenet::{Forecaster, TrainConfig, Trainer};
use enhancenet_bench::{bench_dataset, bench_dims, bench_wavenet_config};
use enhancenet_models::{GruSeq2Seq, TemporalMode, WaveNet};
use std::time::Instant;

const SHARDS: [usize; 4] = [1, 2, 4, 8];
const EPOCHS: usize = 2;
const BATCHES_PER_EPOCH: usize = 10;

fn config(shards: usize) -> TrainConfig {
    TrainConfig::builder()
        .epochs(EPOCHS)
        .batch_size(8)
        .max_batches_per_epoch(Some(BATCHES_PER_EPOCH))
        .max_eval_batches(Some(1))
        .data_parallel(shards)
        .build()
        .expect("report config is valid")
}

fn measure(model: &mut dyn Forecaster) -> Vec<(usize, f64)> {
    let (data, _) = bench_dataset();
    // Warm-up: populate scratch pools and caches outside the timed region.
    Trainer::new(config(1)).train(model, &data);
    SHARDS
        .iter()
        .map(|&shards| {
            let trainer = Trainer::new(config(shards));
            let started = Instant::now();
            let report = trainer.train(model, &data);
            let secs = started.elapsed().as_secs_f64();
            let windows: usize = report.epoch_telemetry.iter().map(|e| e.windows).sum();
            (shards, windows as f64 / secs)
        })
        .collect()
}

fn print_host(host: &str, rows: &[(usize, f64)]) {
    let base = rows[0].1;
    println!("\n{host}");
    println!("{:>7} {:>14} {:>9}", "shards", "windows/s", "speedup");
    for &(shards, throughput) in rows {
        println!("{shards:>7} {throughput:>14.1} {:>8.2}x", throughput / base);
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "shard scaling: {EPOCHS} epochs x {BATCHES_PER_EPOCH} batches of 8 windows, {cores} core(s)"
    );

    let mut gru = GruSeq2Seq::rnn(bench_dims(16), 2, TemporalMode::Shared, 1);
    print_host("GRU host", &measure(&mut gru));

    let mut wavenet = WaveNet::tcn(bench_dims(16), bench_wavenet_config(), TemporalMode::Shared, 1);
    print_host("WaveNet host", &measure(&mut wavenet));
}
