//! Sub-quadratic dynamic-graph scaling report: trains and serves the
//! `D-DA-GTCN` with row-sparse top-k DAMGN attention across an `N`-sweep
//! and fits the latency growth exponent.
//!
//! ```sh
//! cargo run --release -p enhancenet-bench --bin graph_scaling -- \
//!     --sizes 500,1000,2000,4000,10000 --top-k 32 \
//!     --telemetry-out target/graph_scaling.jsonl \
//!     --report-out target/graph_scaling_report.json --check
//! ```
//!
//! Per size `N` the run: generates a grid-correlated series ([`GridConfig`],
//! `O(N·T)` — no dense `[N, N]` anywhere), derives CSR dual-transition base
//! supports, builds the model via [`WaveNet::gtcn_sparse`], trains a few
//! batches, then times warm compiled-plan forecasts ([`Forecaster::predict`]
//! — the serving path). A least-squares fit of `ln(latency)` against
//! `ln(N)` yields the growth exponent; the dense DAMGN path is `Θ(N²)`, so
//! the sparse path must fit **below 2.0** (grid adjacency nnz and the top-k
//! budget are both `O(N)`, so it lands near 1).
//!
//! `--telemetry-out` dumps `graph.sparse.*` / `damgn.topk.*` telemetry as
//! JSONL for `scripts/bench_summary --check` (CI converts it into
//! `BENCH_graph_scaling.json`); `--report-out` writes this binary's own
//! sweep report. `--check` exits non-zero unless training converged to a
//! finite loss, serving produced finite forecasts, the sparse counters
//! moved, and the fitted exponent is below 2.0.

use enhancenet::prelude::*;
use enhancenet_data::{generate_grid_series, GridConfig, WindowDataset};
use enhancenet_graph::{build_supports_csr, SupportKind};
use enhancenet_models::{GraphMode, ModelDims, TemporalMode, WaveNet, WaveNetConfig};
use enhancenet_tensor::Tensor;
use std::time::Instant;

const H: usize = 4;
const F: usize = 2;
const STEPS: usize = 40;

struct Args {
    sizes: Vec<usize>,
    top_k: usize,
    train_batches: usize,
    predict_iters: usize,
    telemetry_out: Option<std::path::PathBuf>,
    report_out: Option<std::path::PathBuf>,
    check: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        sizes: vec![500, 1000, 2000, 4000],
        top_k: 32,
        train_batches: 4,
        predict_iters: 5,
        telemetry_out: None,
        report_out: None,
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match arg.as_str() {
            "--sizes" => {
                parsed.sizes = value("--sizes")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().expect("--sizes: comma-separated entity counts"))
                    .collect();
            }
            "--top-k" => parsed.top_k = value("--top-k").parse().expect("--top-k: usize"),
            "--train-batches" => {
                parsed.train_batches =
                    value("--train-batches").parse().expect("--train-batches: usize");
            }
            "--predict-iters" => {
                parsed.predict_iters =
                    value("--predict-iters").parse().expect("--predict-iters: usize");
            }
            "--telemetry-out" => {
                parsed.telemetry_out = Some(value("--telemetry-out").into());
            }
            "--report-out" => parsed.report_out = Some(value("--report-out").into()),
            "--check" => parsed.check = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: graph_scaling [--sizes 500,1000,...] [--top-k K] \
                     [--train-batches B] [--predict-iters I] [--telemetry-out path] \
                     [--report-out path] [--check]"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(!parsed.sizes.is_empty(), "--sizes must name at least one entity count");
    parsed
}

/// One sweep point: train briefly, then time warm compiled-plan forecasts.
struct SizeResult {
    n: usize,
    adjacency_nnz: usize,
    params: usize,
    final_loss: f32,
    train_ms: f64,
    predict_us: f64,
    forecast_finite: bool,
}

fn run_size(n: usize, top_k: usize, train_batches: usize, predict_iters: usize) -> SizeResult {
    let series = generate_grid_series(&GridConfig::new(n, STEPS));
    let adjacency_nnz = series.adjacency.nnz();
    let data = WindowDataset::from_values(&series.values, H, F).expect("series covers H+F");
    let bases = build_supports_csr(&series.adjacency, SupportKind::DoubleTransition);

    let dims =
        ModelDims { num_entities: n, in_features: 1, hidden: 8, input_len: H, output_len: F };
    let config = WaveNetConfig { dilations: vec![1, 2], kernel: 2, end_hidden: 16, dropout: 0.0 };
    let mut model = WaveNet::gtcn_sparse(
        dims,
        config,
        TemporalMode::Distinct(DfgnConfig::default()),
        GraphMode::paper_dynamic_topk(top_k),
        bases,
        7,
    );
    assert_eq!(model.name(), "D-DA-GTCN");
    let params = model.num_parameters();

    let cfg = TrainConfig::builder()
        .epochs(1)
        .batch_size(4)
        .max_batches_per_epoch(Some(train_batches))
        .max_eval_batches(Some(1))
        .build()
        .expect("train config is valid");
    let t0 = Instant::now();
    let report = Trainer::new(cfg).train(&mut model, &data);
    let train_ms = t0.elapsed().as_secs_f64() * 1e3;
    let final_loss = report.train_loss.last().copied().unwrap_or(f32::NAN);

    // Serving path: warm once (plan compile + caches), then time steady-
    // state forecasts on a fresh window.
    let window = Tensor::from_vec(series.values.data()[..H * n].to_vec(), &[H, n, 1]);
    let mut out = Tensor::default();
    model.predict_into(&window, &mut out).expect("window matches model dims");
    let forecast_finite = out.data().iter().all(|v| v.is_finite());
    let t0 = Instant::now();
    for _ in 0..predict_iters {
        model.predict_into(&window, &mut out).expect("warm predict succeeds");
    }
    let predict_us = t0.elapsed().as_secs_f64() * 1e6 / predict_iters.max(1) as f64;

    SizeResult { n, adjacency_nnz, params, final_loss, train_ms, predict_us, forecast_finite }
}

/// Least-squares slope of `ln(y)` against `ln(x)` — the growth exponent.
fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    let k = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    let denom = k * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return f64::NAN;
    }
    (k * sxy - sx * sy) / denom
}

fn main() {
    let args = parse_args();
    if args.telemetry_out.is_some() {
        enhancenet_telemetry::set_enabled(true);
    }

    println!("graph scaling: D-DA-GTCN, top_k={}, {} sweep point(s)", args.top_k, args.sizes.len());
    let results: Vec<SizeResult> = args
        .sizes
        .iter()
        .map(|&n| {
            let r = run_size(n, args.top_k, args.train_batches, args.predict_iters);
            println!(
                "  N={:<6} nnz={:<7} params={:<8} loss={:<10.4} train={:>9.1}ms predict={:>10.1}us",
                r.n, r.adjacency_nnz, r.params, r.final_loss, r.train_ms, r.predict_us
            );
            r
        })
        .collect();

    let points: Vec<(f64, f64)> = results.iter().map(|r| (r.n as f64, r.predict_us)).collect();
    let exponent = if points.len() >= 2 { fit_exponent(&points) } else { f64::NAN };
    if points.len() >= 2 {
        println!("fitted predict-latency exponent: {exponent:.3} (dense DAMGN would be 2.0)");
    } else {
        println!("single sweep point: no exponent fit (need >= 2 sizes)");
    }

    let sparse_nnz = enhancenet_telemetry::counter_value("graph.sparse.nnz");
    let sparse_rows = enhancenet_telemetry::counter_value("graph.sparse.rows");
    let topk_builds = enhancenet_telemetry::counter_value("damgn.topk.builds");
    let topk_nnz = enhancenet_telemetry::counter_value("damgn.topk.nnz");
    if enhancenet_telemetry::enabled() {
        println!(
            "sparse counters: graph.sparse.nnz={sparse_nnz} graph.sparse.rows={sparse_rows} \
             damgn.topk.builds={topk_builds} damgn.topk.nnz={topk_nnz}"
        );
    }

    let report = serde_json::json!({
        "model": "D-DA-GTCN",
        "top_k": args.top_k,
        "input_len": H,
        "output_len": F,
        "sweep": results.iter().map(|r| serde_json::json!({
            "num_entities": r.n,
            "adjacency_nnz": r.adjacency_nnz,
            "parameters": r.params,
            "final_train_loss": r.final_loss,
            "train_ms": r.train_ms,
            "predict_us": r.predict_us,
        })).collect::<Vec<_>>(),
        "fitted_exponent": if exponent.is_finite() {
            serde_json::json!(exponent)
        } else {
            serde_json::Value::Null
        },
        "counters": {
            "graph.sparse.nnz": sparse_nnz,
            "graph.sparse.rows": sparse_rows,
            "damgn.topk.builds": topk_builds,
            "damgn.topk.nnz": topk_nnz,
        },
    });
    if let Some(path) = &args.report_out {
        std::fs::write(path, format!("{report:#}\n")).expect("report path is writable");
        println!("report: {}", path.display());
    }
    if let Some(path) = &args.telemetry_out {
        enhancenet_telemetry::write_jsonl(path).expect("telemetry path is writable");
        println!("telemetry: {}", path.display());
    }

    if args.check {
        let mut failures: Vec<String> = Vec::new();
        let mut expect = |ok: bool, what: &str| {
            if !ok {
                failures.push(what.to_string());
            }
        };
        for r in &results {
            expect(r.final_loss.is_finite(), &format!("N={}: training loss is finite", r.n));
            expect(r.forecast_finite, &format!("N={}: served forecast is finite", r.n));
        }
        if points.len() >= 2 {
            expect(
                exponent.is_finite() && exponent < 2.0,
                &format!("fitted exponent {exponent:.3} < 2.0 (sub-quadratic)"),
            );
        }
        if enhancenet_telemetry::enabled() {
            expect(sparse_nnz > 0, "graph.sparse.nnz moved (SpMM kernels ran)");
            expect(sparse_rows > 0, "graph.sparse.rows moved");
            expect(topk_builds > 0, "damgn.topk.builds moved (top-k pattern built)");
            expect(topk_nnz > 0, "damgn.topk.nnz moved");
        }
        if failures.is_empty() {
            println!("check: OK");
        } else {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
