//! Multi-tenant fleet load generator: replays bursty traffic against a
//! [`FleetService`] SLO, hot-swaps weights mid-run, and reports per-tenant
//! quota/SLO outcomes plus a per-worker scaling table.
//!
//! ```sh
//! cargo run --release -p enhancenet-bench --bin load_gen -- \
//!     --workers 2 --secs 2 --telemetry-out target/fleet_load.jsonl \
//!     --report-out target/fleet_load_report.json --check
//! ```
//!
//! Three phases:
//!
//! 1. **Scaling sweep** — one unthrottled tenant per worker tight-looping
//!    forecasts for `--scaling-secs` at each fleet size in `--scaling`.
//!    Aggregate throughput vs worker count documents where the machine's
//!    core budget caps the fleet: on a single-core host every row pins
//!    near 1.0x (the single-core ceiling); on an M-core host throughput
//!    tracks min(workers, M).
//! 2. **Burst scenario** — a `steady` tenant paced at half its quota and a
//!    `bursty` tenant firing 2x-overload bursts share one fleet. The token
//!    bucket throttles the bursts to degraded persistence forecasts
//!    (never errors) before they reach the shared queues, so the steady
//!    tenant's deadline hit-rate stays above the SLO target. Halfway
//!    through, fresh weights are published through the
//!    [`SnapshotPublisher`]; in-flight requests finish on the old
//!    snapshot and workers adopt the new one at the next batch boundary.
//! 3. **Parity probe** — a fresh tenant forecast after the swap must match
//!    the offline `predict` on the new weights bit for bit.
//!
//! `--telemetry-out` dumps the `serve.tenant.*` / `serve.swap.*` /
//! `serve.slo.*` telemetry as JSONL for `scripts/bench_summary --check`
//! (CI turns it into `BENCH_fleet_load.json`); `--report-out` writes this
//! binary's own scenario report as JSON. `--check` exits non-zero unless
//! the swap landed, quotas isolated the burst, and the steady tenant held
//! its SLO.

use enhancenet::prelude::*;
use enhancenet_models::{GruSeq2Seq, ModelDims, TemporalMode};
use enhancenet_tensor::{Tensor, TensorRng};
use std::time::{Duration, Instant};

/// Problem size: small enough that one forecast is tens of microseconds,
/// so the generator saturates workers from a handful of client threads.
const N: usize = 8;
const C: usize = 1;
const H: usize = 12;
const F: usize = 12;

fn dims() -> ModelDims {
    ModelDims { num_entities: N, in_features: C, hidden: 8, input_len: H, output_len: F }
}

fn host(seed: u64) -> GruSeq2Seq {
    GruSeq2Seq::rnn(dims(), 1, TemporalMode::Shared, seed)
}

fn scaler() -> StandardScaler {
    let mut rng = TensorRng::seed(17);
    let history = rng.normal(&[64, N, C], 50.0, 8.0);
    StandardScaler::fit(&history, 48).expect("history is non-degenerate")
}

/// Deterministic raw observation row (`N * C` values) at step `t`.
fn row(t: i64) -> Vec<f32> {
    (0..N * C).map(|e| 50.0 + e as f32 + (t as f32 * 0.37).sin() * 5.0).collect()
}

fn warm(tenant: &Tenant<'_>) {
    for t in 0..H as i64 {
        tenant.ingest_row(t, &row(t)).expect("row has N*C values");
    }
}

#[derive(Debug, Default, Clone, Copy)]
struct ClientStats {
    requests: u64,
    healthy: u64,
    degraded: u64,
    errors: u64,
}

impl ClientStats {
    fn absorb(&mut self, forecast: Result<Forecast, EnhanceNetError>) {
        self.requests += 1;
        match forecast {
            Ok(f) if f.is_degraded() => self.degraded += 1,
            Ok(_) => self.healthy += 1,
            Err(_) => self.errors += 1,
        }
    }
}

/// Tight-loops forecasts on one tenant until `until`, ingesting a fresh
/// row every 64 requests to keep the window moving like live traffic.
fn tight_loop(fleet: &FleetService, name: &str, until: Instant) -> ClientStats {
    let tenant = fleet.tenant(name);
    warm(&tenant);
    let mut stats = ClientStats::default();
    let mut t = H as i64;
    while Instant::now() < until {
        stats.absorb(tenant.forecast());
        if stats.requests % 64 == 0 {
            tenant.ingest_row(t, &row(t)).expect("row has N*C values");
            t += 1;
        }
    }
    stats
}

/// Phase 1: aggregate throughput at each fleet size, one tenant per worker.
fn scaling_sweep(points: &[usize], secs: f64) -> Vec<(usize, f64)> {
    points
        .iter()
        .map(|&workers| {
            let fleet = ServeConfig::builder()
                .workers(workers)
                .deadline(Duration::from_secs(5))
                .spawn_fleet(Box::new(host(1)), scaler())
                .expect("fleet config is valid and the GRU host is plannable");
            let started = Instant::now();
            let until = started + Duration::from_secs_f64(secs);
            let stats: Vec<ClientStats> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|i| {
                        let fleet = &fleet;
                        let name = format!("t{i}");
                        scope.spawn(move || tight_loop(fleet, &name, until))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("client thread ran")).collect()
            });
            let elapsed = started.elapsed().as_secs_f64();
            fleet.shutdown(ShutdownMode::Drain);
            let total: u64 = stats.iter().map(|s| s.requests).sum();
            (workers, total as f64 / elapsed)
        })
        .collect()
}

/// Phase 2 client: paced at `rate` requests/sec (absolute schedule, no
/// drift), staying under its quota.
fn steady_client(fleet: &FleetService, rate: f64, until: Instant) -> ClientStats {
    let tenant = fleet.tenant("steady");
    warm(&tenant);
    let mut stats = ClientStats::default();
    let interval = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now();
    let mut t = H as i64;
    loop {
        let next = start + interval * (stats.requests as u32 + 1);
        if next >= until {
            return stats;
        }
        stats.absorb(tenant.forecast());
        if stats.requests % 16 == 0 {
            tenant.ingest_row(t, &row(t)).expect("row has N*C values");
            t += 1;
        }
        if let Some(pause) = next.checked_duration_since(Instant::now()) {
            std::thread::sleep(pause);
        }
    }
}

/// Phase 2 client: idles, then fires `burst` back-to-back requests — 2x
/// the token bucket's capacity, so roughly half of every burst throttles.
fn bursty_client(fleet: &FleetService, burst: usize, until: Instant) -> ClientStats {
    let tenant = fleet.tenant("bursty");
    warm(&tenant);
    let mut stats = ClientStats::default();
    let mut t = H as i64;
    while Instant::now() < until {
        std::thread::sleep(Duration::from_millis(150));
        for _ in 0..burst {
            stats.absorb(tenant.forecast());
        }
        tenant.ingest_row(t, &row(t)).expect("row has N*C values");
        t += 1;
    }
    stats
}

struct Args {
    workers: usize,
    secs: f64,
    scaling: Vec<usize>,
    scaling_secs: f64,
    telemetry_out: Option<std::path::PathBuf>,
    report_out: Option<std::path::PathBuf>,
    check: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        workers: 2,
        secs: 2.0,
        scaling: vec![1, 2, 4],
        scaling_secs: 1.0,
        telemetry_out: None,
        report_out: None,
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match arg.as_str() {
            "--workers" => parsed.workers = value("--workers").parse().expect("--workers: usize"),
            "--secs" => parsed.secs = value("--secs").parse().expect("--secs: seconds"),
            "--scaling" => {
                parsed.scaling = value("--scaling")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().expect("--scaling: comma-separated worker counts"))
                    .collect();
            }
            "--scaling-secs" => {
                parsed.scaling_secs =
                    value("--scaling-secs").parse().expect("--scaling-secs: secs");
            }
            "--telemetry-out" => {
                parsed.telemetry_out = Some(value("--telemetry-out").into());
            }
            "--report-out" => parsed.report_out = Some(value("--report-out").into()),
            "--check" => parsed.check = true,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: load_gen [--workers K] [--secs S] [--scaling 1,2,4] \
                     [--scaling-secs S] [--telemetry-out path] [--report-out path] [--check]"
                );
                std::process::exit(2);
            }
        }
    }
    parsed
}

fn slo_json(slo: &SloReport) -> serde_json::Value {
    serde_json::json!({
        "requests": slo.requests,
        "latency_p50_ms": slo.latency_p50_ns / 1e6,
        "latency_p99_ms": slo.latency_p99_ns / 1e6,
        "deadline_hit_rate": slo.deadline_hit_rate,
        "degraded_rate": slo.degraded_rate,
        "error_budget_burn": slo.error_budget_burn,
        "target": slo.target,
    })
}

fn main() {
    let args = parse_args();
    if args.telemetry_out.is_some() {
        enhancenet_telemetry::set_enabled(true);
    }
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let quota = TenantQuota::per_second(400.0).with_burst(64.0);
    let slo_target = 0.95;

    // Phase 1: per-worker scaling.
    println!("fleet scaling ({cores} core(s)), {:.1}s per point:", args.scaling_secs);
    let scaling = scaling_sweep(&args.scaling, args.scaling_secs);
    let base = scaling.first().map(|&(_, t)| t).unwrap_or(1.0);
    for &(workers, per_sec) in &scaling {
        println!("  workers={workers:<2} {per_sec:>12.0} forecasts/s  {:>6.2}x", per_sec / base);
    }
    if cores == 1 {
        println!(
            "  single-core ceiling: every fleet size shares one core, so aggregate \
             throughput stays near the 1-worker rate; per-worker scaling needs cores"
        );
    }

    // Phase 2: burst scenario with mid-run hot swap.
    let fleet = ServeConfig::builder()
        .workers(args.workers)
        .queue_capacity(256)
        .slo_window(Duration::from_secs(30))
        .slo_target(slo_target)
        .tenant_quota(quota)
        .spawn_fleet(Box::new(host(1)), scaler())
        .expect("fleet config is valid and the GRU host is plannable");
    let swapped = host(2);
    let publisher = fleet.publisher();

    let started = Instant::now();
    let until = started + Duration::from_secs_f64(args.secs);
    let (steady, bursty, epoch) = std::thread::scope(|scope| {
        let steady = scope.spawn(|| steady_client(&fleet, quota.rate * 0.5, until));
        let bursty = scope.spawn(|| bursty_client(&fleet, quota.burst as usize * 2, until));
        std::thread::sleep(Duration::from_secs_f64(args.secs * 0.5));
        let epoch = publisher.publish(swapped.store()).expect("same architecture, same layout");
        println!("published snapshot epoch {epoch} at t+{:.2}s", started.elapsed().as_secs_f64());
        (
            steady.join().expect("steady client ran"),
            bursty.join().expect("bursty client ran"),
            epoch,
        )
    });
    let elapsed = started.elapsed().as_secs_f64();

    // Phase 3: a post-swap forecast must match offline predict on the new
    // weights bit for bit.
    let parity = fleet.tenant("parity");
    warm(&parity);
    let served = parity.forecast().expect("window is warm");
    let sc = scaler();
    let raw = Tensor::from_vec((0..H as i64).flat_map(row).collect(), &[H, N, C]);
    let offline = sc.inverse_feature(
        &swapped.predict(&sc.transform(&raw).expect("scaler fits the window")).expect("predicts"),
        0,
    );
    let parity_ok = !served.is_degraded() && served.values.data() == offline.data();

    let reports = fleet.tenant_reports();
    let fleet_slo = fleet.slo_report();
    let shutdown = fleet.shutdown(ShutdownMode::Drain);

    let total = steady.requests + bursty.requests;
    println!(
        "\nburst scenario: {} workers, {:.1}s, {} forecasts ({:.0}/s aggregate)",
        args.workers,
        elapsed,
        total,
        total as f64 / elapsed,
    );
    println!(
        "{:>8} {:>6} {:>9} {:>10} {:>9} {:>9} {:>8}",
        "tenant", "shard", "requests", "throttled", "degraded", "hit_rate", "p99_ms"
    );
    for r in &reports {
        println!(
            "{:>8} {:>6} {:>9} {:>10} {:>9} {:>9.3} {:>8.2}",
            r.tenant,
            r.shard,
            r.requests,
            r.throttled,
            r.degraded,
            r.slo.deadline_hit_rate,
            r.slo.latency_p99_ns / 1e6,
        );
    }
    println!(
        "swap: epoch {epoch}, post-swap parity {}; shutdown drained {} shed {}",
        if parity_ok { "ok" } else { "MISMATCH" },
        shutdown.drained,
        shutdown.shed,
    );

    let report = serde_json::json!({
        "schema": "enhancenet-fleet-load-v1",
        "cores": cores,
        "scenario": {
            "workers": args.workers,
            "secs": args.secs,
            "quota": { "rate": quota.rate, "burst": quota.burst },
            "slo_target": slo_target,
        },
        "throughput": { "forecasts": total, "per_sec": total as f64 / elapsed },
        "scaling": scaling
            .iter()
            .map(|&(workers, per_sec)| serde_json::json!({
                "workers": workers,
                "per_sec": per_sec,
                "speedup": per_sec / base,
            }))
            .collect::<Vec<_>>(),
        "swap": { "epoch": epoch, "parity_bitwise": parity_ok },
        "clients": {
            "steady": { "requests": steady.requests, "healthy": steady.healthy,
                        "degraded": steady.degraded, "errors": steady.errors },
            "bursty": { "requests": bursty.requests, "healthy": bursty.healthy,
                        "degraded": bursty.degraded, "errors": bursty.errors },
        },
        "tenants": reports
            .iter()
            .map(|r| serde_json::json!({
                "tenant": r.tenant.clone(),
                "shard": r.shard,
                "requests": r.requests,
                "throttled": r.throttled,
                "degraded": r.degraded,
                "slo": slo_json(&r.slo),
            }))
            .collect::<Vec<_>>(),
        "fleet_slo": slo_json(&fleet_slo),
        "shutdown": { "drained": shutdown.drained, "shed": shutdown.shed },
    });
    enhancenet_telemetry::record_event("fleet_load", &report);
    if let Some(path) = &args.report_out {
        std::fs::write(path, format!("{:#}\n", report)).expect("report path is writable");
        println!("report written to {}", path.display());
    }
    if let Some(path) = &args.telemetry_out {
        enhancenet_telemetry::write_jsonl(path).expect("telemetry JSONL is writable");
        println!("telemetry written to {}", path.display());
    }

    if args.check {
        let steady_report = reports.iter().find(|r| r.tenant == "steady").expect("steady ran");
        let bursty_report = reports.iter().find(|r| r.tenant == "bursty").expect("bursty ran");
        let mut failures = Vec::new();
        let mut expect = |ok: bool, what: String| {
            if !ok {
                failures.push(what);
            }
        };
        expect(epoch == 1, format!("hot swap must publish epoch 1, got {epoch}"));
        expect(parity_ok, "post-swap forecast must match offline predict bitwise".into());
        expect(
            steady.errors == 0 && bursty.errors == 0,
            format!(
                "overload must degrade, never error (steady {} / bursty {} errors)",
                steady.errors, bursty.errors
            ),
        );
        expect(bursty_report.throttled > 0, "2x-overload bursts must trip the token bucket".into());
        expect(
            steady_report.throttled == 0,
            format!("steady tenant under quota throttled {} times", steady_report.throttled),
        );
        expect(
            steady_report.slo.deadline_hit_rate >= slo_target,
            format!(
                "steady tenant hit-rate {:.3} fell below the {slo_target} target",
                steady_report.slo.deadline_hit_rate
            ),
        );
        if enhancenet_telemetry::enabled() {
            let adopted = enhancenet_telemetry::counter_value("serve.swap.adopted");
            expect(adopted > 0, "no worker adopted the published snapshot".into());
            expect(
                enhancenet_telemetry::counter_value("serve.tenant.throttled") > 0,
                "serve.tenant.throttled counter never moved".into(),
            );
        }
        if failures.is_empty() {
            println!("check: OK");
        } else {
            for f in &failures {
                eprintln!("check: FAIL — {f}");
            }
            std::process::exit(1);
        }
    }
}
