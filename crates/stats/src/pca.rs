//! 2-D principal component analysis via power iteration with deflation.
//! Used to initialize t-SNE and as a cheap linear embedding.

use enhancenet_tensor::Tensor;

/// Projects the rows of `points` (`[N, D]`) onto their first two principal
/// components, returning `[N, 2]`.
pub fn pca_2d(points: &Tensor) -> Tensor {
    assert_eq!(points.rank(), 2, "pca expects [N, D]");
    let (n, d) = (points.shape()[0], points.shape()[1]);
    assert!(d >= 1, "pca needs at least one feature");

    // Center.
    let mean = points.mean_axis(0);
    let centered = points.sub_t(&mean);

    // Covariance [D, D] — transpose-fused Xᵀ·X, no materialized transpose.
    let cov = centered.matmul_tn(&centered).mul_scalar(1.0 / n.max(1) as f32);

    let pc1 = power_iteration(&cov, 0xFACE);
    // Deflate and repeat.
    let lambda1 = rayleigh(&cov, &pc1);
    let deflated = deflate(&cov, &pc1, lambda1);
    let pc2 = if d >= 2 { power_iteration(&deflated, 0xBEEF) } else { pc1.clone() };

    let mut out = Vec::with_capacity(n * 2);
    for i in 0..n {
        let row = &centered.data()[i * d..(i + 1) * d];
        let p1: f32 = row.iter().zip(pc1.data()).map(|(a, b)| a * b).sum();
        let p2: f32 = row.iter().zip(pc2.data()).map(|(a, b)| a * b).sum();
        out.push(p1);
        out.push(p2);
    }
    Tensor::from_vec(out, &[n, 2])
}

fn power_iteration(m: &Tensor, seed: u64) -> Tensor {
    let d = m.shape()[0];
    let mut v = enhancenet_tensor::TensorRng::seed(seed).normal(&[d], 0.0, 1.0);
    let norm = v.norm().max(1e-12);
    v.map_inplace(|x| x / norm);
    for _ in 0..200 {
        let mv = m.matmul(&v.reshape(&[d, 1])).reshape(&[d]);
        let norm = mv.norm();
        if norm < 1e-12 {
            break;
        }
        let next = mv.mul_scalar(1.0 / norm);
        let delta = next.sub_t(&v).norm().min(next.add_t(&v).norm());
        v = next;
        if delta < 1e-7 {
            break;
        }
    }
    v
}

fn rayleigh(m: &Tensor, v: &Tensor) -> f32 {
    let d = v.numel();
    let mv = m.matmul(&v.reshape(&[d, 1])).reshape(&[d]);
    v.dot(&mv)
}

fn deflate(m: &Tensor, v: &Tensor, lambda: f32) -> Tensor {
    let d = v.numel();
    let vv = v.reshape(&[d, 1]).matmul(&v.reshape(&[1, d]));
    m.sub_t(&vv.mul_scalar(lambda))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape() {
        let pts = Tensor::from_vec((0..30).map(|v| v as f32).collect(), &[10, 3]);
        assert_eq!(pca_2d(&pts).shape(), &[10, 2]);
    }

    #[test]
    fn first_component_captures_dominant_axis() {
        // Points spread along (1, 1, 0) with small noise elsewhere.
        let mut data = Vec::new();
        for i in 0..40 {
            let t = i as f32 - 20.0;
            data.extend_from_slice(&[t, t, (i % 3) as f32 * 0.01]);
        }
        let pts = Tensor::from_vec(data, &[40, 3]);
        let proj = pca_2d(&pts);
        // Variance along PC1 far exceeds PC2.
        let var = |axis: usize| -> f32 {
            let vals: Vec<f32> = (0..40).map(|i| proj.at(&[i, axis])).collect();
            let m = vals.iter().sum::<f32>() / 40.0;
            vals.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / 40.0
        };
        assert!(var(0) > 100.0 * var(1).max(1e-9), "var0 {} var1 {}", var(0), var(1));
    }

    #[test]
    fn preserves_separation_of_clusters() {
        let mut data = Vec::new();
        for i in 0..10 {
            data.extend_from_slice(&[0.0, i as f32 * 0.01, 0.0, 0.0]);
        }
        for i in 0..10 {
            data.extend_from_slice(&[50.0, i as f32 * 0.01, 0.0, 0.0]);
        }
        let pts = Tensor::from_vec(data, &[20, 4]);
        let proj = pca_2d(&pts);
        let a = proj.at(&[0, 0]);
        let b = proj.at(&[10, 0]);
        assert!((a - b).abs() > 10.0, "clusters collapsed: {a} vs {b}");
    }

    #[test]
    fn centered_projection_has_zero_mean() {
        let pts = Tensor::from_vec((0..24).map(|v| (v as f32).sin() * 3.0).collect(), &[8, 3]);
        let proj = pca_2d(&pts);
        assert!(proj.mean_axis(0).norm() < 1e-4);
    }
}
