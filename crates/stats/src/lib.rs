//! # enhancenet-stats
//!
//! Evaluation statistics for the reproduction:
//!
//! * forecasting metrics — masked MAE / RMSE / MAPE exactly as the paper's
//!   evaluation protocol reports them (§VI-A "Evaluation Metrics"),
//! * Welch's t-test with exact Student-t p-values (the significance test of
//!   §VI-B3),
//! * exact t-SNE (van der Maaten & Hinton \[23\]) for Figure 10's
//!   entity-memory embedding,
//! * PCA (power iteration) as a fast linear alternative / t-SNE init,
//! * k-means for the cluster colouring of Figures 10–11.

pub mod kmeans;
pub mod metrics;
pub mod pca;
pub mod special;
pub mod tsne;
pub mod ttest;

pub use kmeans::kmeans;
pub use metrics::{mae, mape, metrics_at_horizon, rmse, HorizonMetrics};
pub use pca::pca_2d;
pub use tsne::{tsne, TsneConfig};
pub use ttest::{welch_t_test, TTestResult};
