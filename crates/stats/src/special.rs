//! Special functions needed for exact Student-t p-values: log-gamma
//! (Lanczos) and the regularized incomplete beta function (continued
//! fraction, Numerical Recipes style). Implemented in f64 for accuracy.

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)`.
pub fn betainc(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "betainc x out of range: {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction in its rapidly-converging region.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz's continued fraction for the incomplete beta.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-30;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Two-sided p-value of a t statistic with `df` degrees of freedom:
/// `P(|T| > |t|) = I_{df/(df+t²)}(df/2, 1/2)`.
pub fn t_sf_two_sided(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    betainc(df / 2.0, 0.5, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(2.0)).abs() < 1e-10);
        assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-9);
        assert!((ln_gamma(11.0) - (3628800.0f64).ln()).abs() < 1e-8);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn betainc_boundaries() {
        assert_eq!(betainc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betainc(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn betainc_symmetric_case() {
        // I_0.5(a, a) = 0.5
        for a in [0.5, 1.0, 2.0, 7.5] {
            assert!((betainc(a, a, 0.5) - 0.5).abs() < 1e-9, "a = {a}");
        }
    }

    #[test]
    fn betainc_uniform_distribution() {
        // I_x(1,1) = x
        for x in [0.1, 0.37, 0.9] {
            assert!((betainc(1.0, 1.0, x) - x).abs() < 1e-10);
        }
    }

    #[test]
    fn t_pvalues_match_reference() {
        // Reference values from scipy.stats.t.sf(t, df) * 2.
        let cases = [
            (2.0, 10.0, 0.07338803),
            (1.0, 5.0, 0.36321746),
            (3.5, 30.0, 0.00147681),
            (0.0, 7.0, 1.0),
        ];
        for (t, df, expected) in cases {
            let p = t_sf_two_sided(t, df);
            assert!((p - expected).abs() < 1e-5, "t={t} df={df}: got {p}, want {expected}");
        }
    }

    #[test]
    fn large_t_gives_tiny_p() {
        assert!(t_sf_two_sided(10.0, 50.0) < 1e-10);
    }
}
