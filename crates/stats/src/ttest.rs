//! Welch's unequal-variance t-test — the significance test of §VI-B3
//! ("we perform the t-tests … The p-values are less than 0.01").

use crate::special::t_sf_two_sided;

/// Result of a two-sample Welch t-test.
#[derive(Debug, Clone, Copy)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

impl TTestResult {
    /// True when the difference is significant at level `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Welch's t-test for the difference of means of two independent samples.
///
/// # Panics
///
/// Panics when either sample has fewer than two observations.
pub fn welch_t_test(a: &[f32], b: &[f32]) -> TTestResult {
    assert!(a.len() >= 2 && b.len() >= 2, "t-test needs at least 2 samples per group");
    let (ma, va, na) = mean_var(a);
    let (mb, vb, nb) = mean_var(b);
    let se2 = va / na + vb / nb;
    let se = se2.sqrt().max(1e-300);
    let t = (ma - mb) / se;
    // Welch–Satterthwaite.
    let df =
        se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0)).max(1e-300);
    let p_value = t_sf_two_sided(t.abs(), df.max(1.0));
    TTestResult { t, df, p_value }
}

fn mean_var(x: &[f32]) -> (f64, f64, f64) {
    let n = x.len() as f64;
    let mean = x.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = x.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = welch_t_test(&a, &a);
        assert!(r.t.abs() < 1e-9);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn clearly_different_means_are_significant() {
        let a: Vec<f32> = (0..30).map(|i| 10.0 + (i % 3) as f32 * 0.1).collect();
        let b: Vec<f32> = (0..30).map(|i| 12.0 + (i % 3) as f32 * 0.1).collect();
        let r = welch_t_test(&a, &b);
        assert!(r.significant(0.01), "{r:?}");
        assert!(r.t < 0.0, "a < b should give negative t");
    }

    #[test]
    fn matches_hand_computation() {
        // means 2.3 vs 2.6, both sample variances 0.025, n = 5 each:
        // t = -0.3 / sqrt(0.01) = -3, Welch df = 8.
        let a = [2.1f32, 2.5, 2.3, 2.2, 2.4];
        let b = [2.5f32, 2.7, 2.6, 2.4, 2.8];
        let r = welch_t_test(&a, &b);
        assert!((r.t - (-3.0)).abs() < 1e-5, "t = {}", r.t);
        assert!((r.df - 8.0).abs() < 1e-5, "df = {}", r.df);
        // scipy.stats.t.sf(3, 8) * 2 ≈ 0.01707
        assert!((r.p_value - 0.01707).abs() < 5e-4, "p = {}", r.p_value);
    }

    #[test]
    fn unequal_variances_use_welch_df() {
        let a = [1.0f32, 1.01, 0.99, 1.0, 1.02, 0.98];
        let b = [2.0f32, 5.0, -1.0, 3.0, 0.5, 2.5];
        let r = welch_t_test(&a, &b);
        // df should be pulled toward the smaller-variance-adjusted value,
        // well below the pooled df of 10.
        assert!(r.df < 6.0, "df = {}", r.df);
    }

    #[test]
    #[should_panic(expected = "at least 2 samples")]
    fn rejects_tiny_samples() {
        welch_t_test(&[1.0], &[1.0, 2.0]);
    }
}
