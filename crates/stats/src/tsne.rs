//! Exact t-SNE (van der Maaten & Hinton, JMLR 2008) — reference O(n²)
//! implementation, more than fast enough for the paper's N ≤ 207 entity
//! memories (Figure 10).

use crate::pca::pca_2d;
use enhancenet_tensor::Tensor;

/// t-SNE hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TsneConfig {
    /// Target perplexity of the conditional distributions (typical 5–50).
    pub perplexity: f32,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate (η).
    pub learning_rate: f32,
    /// Iterations of early exaggeration (P × 4).
    pub exaggeration_iters: usize,
    /// RNG seed for the PCA fallback jitter.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 15.0,
            iterations: 400,
            learning_rate: 100.0,
            exaggeration_iters: 80,
            seed: 0x75E,
        }
    }
}

/// Embeds the rows of `points` (`[N, D]`) into 2-D. Returns `[N, 2]`.
pub fn tsne(points: &Tensor, config: TsneConfig) -> Tensor {
    assert_eq!(points.rank(), 2, "tsne expects [N, D]");
    let n = points.shape()[0];
    if n <= 2 {
        return pca_2d(points);
    }
    let p = joint_probabilities(points, config.perplexity);

    // PCA init, scaled to small magnitude (vdM's recommendation).
    let mut y = pca_2d(points);
    let norm = y.norm().max(1e-6);
    y = y.mul_scalar(1e-2 / (norm / (n as f32).sqrt()));
    let mut velocity = vec![0.0f32; n * 2];
    let mut gains = vec![1.0f32; n * 2];

    for iter in 0..config.iterations {
        let exaggeration = if iter < config.exaggeration_iters { 4.0 } else { 1.0 };
        let momentum = if iter < 100 { 0.5 } else { 0.8 };

        // Student-t affinities in the embedding.
        let mut num = vec![0.0f32; n * n];
        let mut q_sum = 0.0f32;
        let yd = y.data();
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = yd[i * 2] - yd[j * 2];
                let dy = yd[i * 2 + 1] - yd[j * 2 + 1];
                let v = 1.0 / (1.0 + dx * dx + dy * dy);
                num[i * n + j] = v;
                num[j * n + i] = v;
                q_sum += 2.0 * v;
            }
        }
        let q_sum = q_sum.max(1e-12);

        // Gradient: 4 Σ_j (p_ij·ex − q_ij) num_ij (y_i − y_j).
        let mut grad = vec![0.0f32; n * 2];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let pij = p.data()[i * n + j] * exaggeration;
                let qij = num[i * n + j] / q_sum;
                let mult = 4.0 * (pij - qij) * num[i * n + j];
                grad[i * 2] += mult * (yd[i * 2] - yd[j * 2]);
                grad[i * 2 + 1] += mult * (yd[i * 2 + 1] - yd[j * 2 + 1]);
            }
        }

        // Adaptive gains + momentum update.
        let yd = y.data_mut();
        for k in 0..n * 2 {
            gains[k] = if (grad[k] > 0.0) == (velocity[k] > 0.0) {
                (gains[k] * 0.8).max(0.01)
            } else {
                gains[k] + 0.2
            };
            velocity[k] = momentum * velocity[k] - config.learning_rate * gains[k] * grad[k];
            yd[k] += velocity[k];
        }

        // Recenter to keep the solution bounded.
        let (mut mx, mut my) = (0.0f32, 0.0f32);
        for i in 0..n {
            mx += yd[i * 2];
            my += yd[i * 2 + 1];
        }
        mx /= n as f32;
        my /= n as f32;
        for i in 0..n {
            yd[i * 2] -= mx;
            yd[i * 2 + 1] -= my;
        }
    }
    y
}

/// Symmetrized joint probabilities `P` with per-point bandwidths calibrated
/// to the target perplexity by binary search.
fn joint_probabilities(points: &Tensor, perplexity: f32) -> Tensor {
    let (n, d) = (points.shape()[0], points.shape()[1]);
    let data = points.data();
    let dist2 = |i: usize, j: usize| -> f32 {
        let (a, b) = (&data[i * d..(i + 1) * d], &data[j * d..(j + 1) * d]);
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    };
    let target_entropy = perplexity.max(1.0).ln();

    let mut p = vec![0.0f32; n * n];
    for i in 0..n {
        // Binary search beta = 1/(2σ²).
        let mut beta = 1.0f32;
        let (mut lo, mut hi) = (0.0f32, f32::INFINITY);
        for _ in 0..60 {
            // Conditional distribution and its entropy for this beta.
            let mut sum = 0.0f32;
            let mut weighted = 0.0f32;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let w = (-beta * dist2(i, j)).exp();
                sum += w;
                weighted += w * dist2(i, j);
            }
            let sum = sum.max(1e-30);
            let entropy = beta * weighted / sum + sum.ln();
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-4 {
                break;
            }
            if diff > 0.0 {
                lo = beta;
                beta = if hi.is_finite() { 0.5 * (beta + hi) } else { beta * 2.0 };
            } else {
                hi = beta;
                beta = 0.5 * (beta + lo);
            }
        }
        let mut sum = 0.0f32;
        for j in 0..n {
            if j != i {
                let w = (-beta * dist2(i, j)).exp();
                p[i * n + j] = w;
                sum += w;
            }
        }
        let sum = sum.max(1e-30);
        for j in 0..n {
            p[i * n + j] /= sum;
        }
    }

    // Symmetrize and normalize, with the usual floor.
    let mut out = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            out[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f32)).max(1e-12);
        }
    }
    for i in 0..n {
        out[i * n + i] = 0.0;
    }
    Tensor::from_vec(out, &[n, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use enhancenet_tensor::TensorRng;

    fn blobs(k: usize, per: usize, spread: f32, sep: f32) -> (Tensor, Vec<usize>) {
        let mut rng = TensorRng::seed(5);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..k {
            let cx = sep * (c as f32);
            for _ in 0..per {
                data.push(cx + rng.scalar(-spread, spread));
                data.push(rng.scalar(-spread, spread));
                data.push(rng.scalar(-spread, spread));
                labels.push(c);
            }
        }
        (Tensor::from_vec(data, &[k * per, 3]), labels)
    }

    #[test]
    fn output_shape_and_finite() {
        let (pts, _) = blobs(2, 10, 0.3, 8.0);
        let y = tsne(&pts, TsneConfig { iterations: 150, ..Default::default() });
        assert_eq!(y.shape(), &[20, 2]);
        assert!(!y.has_non_finite());
    }

    #[test]
    fn joint_probabilities_are_a_distribution() {
        let (pts, _) = blobs(2, 8, 0.3, 5.0);
        let p = joint_probabilities(&pts, 5.0);
        let total = p.sum_all();
        assert!((total - 1.0).abs() < 1e-3, "sum = {total}");
        // Symmetric.
        for i in 0..16 {
            for j in 0..16 {
                assert!((p.at(&[i, j]) - p.at(&[j, i])).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn nearby_points_have_higher_affinity() {
        let pts = Tensor::from_rows(&[vec![0.0, 0.0], vec![0.1, 0.0], vec![10.0, 0.0]]);
        let p = joint_probabilities(&pts, 2.0);
        assert!(p.at(&[0, 1]) > p.at(&[0, 2]));
    }

    #[test]
    fn well_separated_clusters_stay_separated() {
        let (pts, labels) = blobs(2, 12, 0.2, 20.0);
        // 600 iterations: the separation ratio at a fixed budget depends on
        // the exact blob draw (250 leaves ~1.8x for some draws; 600 gives
        // >10x), so give the optimizer enough budget to be draw-independent.
        let y = tsne(&pts, TsneConfig { iterations: 600, perplexity: 5.0, ..Default::default() });
        // Mean embedding distance within clusters << between clusters.
        let dist = |a: usize, b: usize| -> f32 {
            let dx = y.at(&[a, 0]) - y.at(&[b, 0]);
            let dy = y.at(&[a, 1]) - y.at(&[b, 1]);
            (dx * dx + dy * dy).sqrt()
        };
        let mut within = 0.0;
        let mut wc = 0;
        let mut between = 0.0;
        let mut bc = 0;
        for a in 0..24 {
            for b in (a + 1)..24 {
                if labels[a] == labels[b] {
                    within += dist(a, b);
                    wc += 1;
                } else {
                    between += dist(a, b);
                    bc += 1;
                }
            }
        }
        let (within, between) = (within / wc as f32, between / bc as f32);
        assert!(between > 2.0 * within, "between {between} vs within {within}");
    }

    #[test]
    fn tiny_inputs_fall_back_to_pca() {
        let pts = Tensor::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let y = tsne(&pts, TsneConfig::default());
        assert_eq!(y.shape(), &[2, 2]);
    }
}
