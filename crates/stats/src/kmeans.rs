//! Lloyd's k-means with k-means++ seeding — used to colour the memory
//! clusters in Figures 10 and 11.

#![allow(clippy::needless_range_loop)] // index loops mirror the matrix math

use enhancenet_tensor::{Tensor, TensorRng};

/// Clusters the rows of `points` (`[N, D]`) into `k` groups.
///
/// Returns `(assignments, centroids)` where `assignments[i] ∈ 0..k` and
/// `centroids` is `[k, D]`. Deterministic given the seed.
pub fn kmeans(points: &Tensor, k: usize, seed: u64, max_iter: usize) -> (Vec<usize>, Tensor) {
    assert_eq!(points.rank(), 2, "kmeans expects [N, D]");
    let (n, d) = (points.shape()[0], points.shape()[1]);
    assert!(k >= 1 && k <= n, "k = {k} must be in 1..={n}");
    let mut rng = TensorRng::seed(seed);
    let row = |i: usize| &points.data()[i * d..(i + 1) * d];
    let dist2 =
        |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f32>> = vec![row(rng.index(n)).to_vec()];
    while centroids.len() < k {
        let weights: Vec<f32> = (0..n)
            .map(|i| centroids.iter().map(|c| dist2(row(i), c)).fold(f32::INFINITY, f32::min))
            .collect();
        let total: f32 = weights.iter().sum();
        let next = if total <= 0.0 {
            rng.index(n)
        } else {
            let mut target = rng.scalar(0.0, total);
            let mut pick = n - 1;
            for (i, &w) in weights.iter().enumerate() {
                if target <= w {
                    pick = i;
                    break;
                }
                target -= w;
            }
            pick
        };
        centroids.push(row(next).to_vec());
    }

    let mut assignments = vec![0usize; n];
    for _ in 0..max_iter {
        // Assign.
        let mut changed = false;
        for i in 0..n {
            let best = (0..k)
                .min_by(|&a, &b| {
                    dist2(row(i), &centroids[a]).total_cmp(&dist2(row(i), &centroids[b]))
                })
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0f32; d]; k];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[assignments[i]] += 1;
            for (s, v) in sums[assignments[i]].iter_mut().zip(row(i)) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f32;
                }
                centroids[c] = sums[c].clone();
            }
        }
        if !changed {
            break;
        }
    }

    let flat: Vec<f32> = centroids.into_iter().flatten().collect();
    (assignments, Tensor::from_vec(flat, &[k, d]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Tensor {
        let mut rng = TensorRng::seed(42);
        let mut data = Vec::new();
        for _ in 0..20 {
            data.push(0.0 + rng.scalar(-0.2, 0.2));
            data.push(0.0 + rng.scalar(-0.2, 0.2));
        }
        for _ in 0..20 {
            data.push(10.0 + rng.scalar(-0.2, 0.2));
            data.push(10.0 + rng.scalar(-0.2, 0.2));
        }
        Tensor::from_vec(data, &[40, 2])
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let (assign, centroids) = kmeans(&pts, 2, 1, 50);
        // All of the first 20 share a label, all of the last 20 the other.
        assert!(assign[..20].iter().all(|&a| a == assign[0]));
        assert!(assign[20..].iter().all(|&a| a == assign[20]));
        assert_ne!(assign[0], assign[20]);
        // Centroids near (0,0) and (10,10) in some order.
        let c0 = (centroids.at(&[0, 0]), centroids.at(&[0, 1]));
        let c1 = (centroids.at(&[1, 0]), centroids.at(&[1, 1]));
        let near =
            |c: (f32, f32), t: (f32, f32)| (c.0 - t.0).abs() < 1.0 && (c.1 - t.1).abs() < 1.0;
        assert!(
            (near(c0, (0.0, 0.0)) && near(c1, (10.0, 10.0)))
                || (near(c1, (0.0, 0.0)) && near(c0, (10.0, 10.0)))
        );
    }

    #[test]
    fn k_equals_n_assigns_each_point_its_own_cluster() {
        let pts = Tensor::from_rows(&[vec![0.0, 0.0], vec![5.0, 0.0], vec![0.0, 5.0]]);
        let (assign, _) = kmeans(&pts, 3, 2, 20);
        let mut sorted = assign.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_blobs();
        let (a1, _) = kmeans(&pts, 2, 9, 50);
        let (a2, _) = kmeans(&pts, 2, 9, 50);
        assert_eq!(a1, a2);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let pts = Tensor::from_rows(&[vec![1.0], vec![3.0], vec![5.0]]);
        let (assign, centroids) = kmeans(&pts, 1, 3, 10);
        assert!(assign.iter().all(|&a| a == 0));
        assert!((centroids.at(&[0, 0]) - 3.0).abs() < 1e-5);
    }
}
