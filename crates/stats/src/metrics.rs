//! Forecast accuracy metrics: MAE, RMSE, MAPE — masked against missing /
//! zero readings, following the DCRNN evaluation protocol the paper adopts.

use enhancenet_tensor::Tensor;

/// Mean absolute error over entries where `truth != 0` (the standard
/// traffic-forecasting mask: a zero speed encodes a missing reading).
pub fn mae(pred: &Tensor, truth: &Tensor) -> f32 {
    masked_reduce(pred, truth, |d, _| d.abs())
}

/// Root mean squared error over non-missing entries.
pub fn rmse(pred: &Tensor, truth: &Tensor) -> f32 {
    masked_reduce(pred, truth, |d, _| d * d).sqrt()
}

/// Mean absolute percentage error (in percent) over non-missing entries.
pub fn mape(pred: &Tensor, truth: &Tensor) -> f32 {
    100.0 * masked_reduce(pred, truth, |d, t| (d / t).abs())
}

fn masked_reduce(pred: &Tensor, truth: &Tensor, f: impl Fn(f32, f32) -> f32) -> f32 {
    assert_eq!(
        pred.shape(),
        truth.shape(),
        "metric shape mismatch: {:?} vs {:?}",
        pred.shape(),
        truth.shape()
    );
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for (&p, &t) in pred.data().iter().zip(truth.data()) {
        if t != 0.0 {
            sum += f(p - t, t) as f64;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        (sum / count as f64) as f32
    }
}

/// The three errors at one forecast horizon — one cell group of Tables
/// I–III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HorizonMetrics {
    /// Mean absolute error.
    pub mae: f32,
    /// Root mean squared error.
    pub rmse: f32,
    /// Mean absolute percentage error (percent).
    pub mape: f32,
}

impl HorizonMetrics {
    /// Computes all three metrics.
    pub fn compute(pred: &Tensor, truth: &Tensor) -> Self {
        Self { mae: mae(pred, truth), rmse: rmse(pred, truth), mape: mape(pred, truth) }
    }
}

/// Metrics at a single horizon step of batched predictions.
///
/// `pred` and `truth` are `[B, F, N]`; `horizon` is 1-indexed as in the
/// paper (3rd, 6th, 12th timestamp).
pub fn metrics_at_horizon(pred: &Tensor, truth: &Tensor, horizon: usize) -> HorizonMetrics {
    assert!(horizon >= 1, "horizons are 1-indexed");
    let p = pred.index_axis(1, horizon - 1);
    let t = truth.index_axis(1, horizon - 1);
    HorizonMetrics::compute(&p, &t)
}

/// Metrics attributed to each entity (sensor) separately.
///
/// `pred` and `truth` are `[B, F, N]`; the result has one entry per
/// entity `n`, computed over all batches and horizons of that entity's
/// column. This is the error-attribution view behind the
/// `probe.entity_error` telemetry events: EnhanceNet's per-entity plugin
/// networks (DFGN memories, §IV-C) make per-entity error the natural unit
/// of diagnosis.
pub fn metrics_per_entity(pred: &Tensor, truth: &Tensor) -> Vec<HorizonMetrics> {
    assert_eq!(pred.shape(), truth.shape(), "per-entity metric shape mismatch");
    assert_eq!(pred.rank(), 3, "expected [B, F, N], got {:?}", pred.shape());
    let n = pred.shape()[2];
    (0..n)
        .map(|i| {
            let p = pred.index_axis(2, i);
            let t = truth.index_axis(2, i);
            HorizonMetrics::compute(&p, &t)
        })
        .collect()
}

/// Metrics at every forecast step `1..=F` (not just the headline 3/6/12).
///
/// `pred` and `truth` are `[B, F, N]`; entry `h` of the result is the
/// error at 1-indexed horizon `h + 1`, the curve behind the
/// `probe.horizon_error` telemetry events.
pub fn metrics_per_horizon(pred: &Tensor, truth: &Tensor) -> Vec<HorizonMetrics> {
    assert_eq!(pred.shape(), truth.shape(), "per-horizon metric shape mismatch");
    assert_eq!(pred.rank(), 3, "expected [B, F, N], got {:?}", pred.shape());
    let f = pred.shape()[1];
    (1..=f).map(|h| metrics_at_horizon(pred, truth, h)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_known_value() {
        let p = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let t = Tensor::from_vec(vec![2.0, 2.0, 5.0], &[3]);
        assert!((mae(&p, &t) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rmse_known_value() {
        let p = Tensor::from_vec(vec![1.0, 5.0], &[2]);
        let t = Tensor::from_vec(vec![2.0, 2.0], &[2]);
        assert!((rmse(&p, &t) - (5.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn mape_known_value() {
        let p = Tensor::from_vec(vec![90.0, 110.0], &[2]);
        let t = Tensor::from_vec(vec![100.0, 100.0], &[2]);
        assert!((mape(&p, &t) - 10.0).abs() < 1e-4);
    }

    #[test]
    fn zero_truth_entries_are_masked() {
        let p = Tensor::from_vec(vec![1.0, 999.0], &[2]);
        let t = Tensor::from_vec(vec![2.0, 0.0], &[2]);
        assert!((mae(&p, &t) - 1.0).abs() < 1e-6);
        assert!((mape(&p, &t) - 50.0).abs() < 1e-4);
    }

    #[test]
    fn all_masked_returns_zero() {
        let p = Tensor::ones(&[3]);
        let t = Tensor::zeros(&[3]);
        assert_eq!(mae(&p, &t), 0.0);
        assert_eq!(rmse(&p, &t), 0.0);
    }

    #[test]
    fn perfect_prediction_scores_zero() {
        let t = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]);
        let m = HorizonMetrics::compute(&t, &t);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.mape, 0.0);
    }

    #[test]
    fn rmse_at_least_mae() {
        let p = Tensor::from_vec(vec![1.0, 2.0, 10.0, 4.0], &[4]);
        let t = Tensor::from_vec(vec![2.0, 2.5, 4.0, 4.5], &[4]);
        assert!(rmse(&p, &t) >= mae(&p, &t));
    }

    #[test]
    fn horizon_selection_is_one_indexed() {
        // [B=1, F=2, N=1]: horizon 1 error 1, horizon 2 error 3.
        let p = Tensor::from_vec(vec![11.0, 13.0], &[1, 2, 1]);
        let t = Tensor::from_vec(vec![10.0, 10.0], &[1, 2, 1]);
        assert!((metrics_at_horizon(&p, &t, 1).mae - 1.0).abs() < 1e-6);
        assert!((metrics_at_horizon(&p, &t, 2).mae - 3.0).abs() < 1e-6);
    }

    #[test]
    fn per_entity_attributes_errors_to_columns() {
        // [B=1, F=2, N=2]: entity 0 always off by 1, entity 1 off by 2, 4.
        let p = Tensor::from_vec(vec![11.0, 12.0, 11.0, 14.0], &[1, 2, 2]);
        let t = Tensor::from_vec(vec![10.0, 10.0, 10.0, 10.0], &[1, 2, 2]);
        let per = metrics_per_entity(&p, &t);
        assert_eq!(per.len(), 2);
        assert!((per[0].mae - 1.0).abs() < 1e-6);
        assert!((per[1].mae - 3.0).abs() < 1e-6);
        assert!((per[1].rmse - 10.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn per_horizon_matches_single_horizon_calls() {
        let p = Tensor::from_vec(vec![11.0, 13.0, 12.0, 16.0], &[1, 2, 2]);
        let t = Tensor::from_vec(vec![10.0, 10.0, 10.0, 10.0], &[1, 2, 2]);
        let per = metrics_per_horizon(&p, &t);
        assert_eq!(per.len(), 2);
        for (i, m) in per.iter().enumerate() {
            let direct = metrics_at_horizon(&p, &t, i + 1);
            assert_eq!(m.mae, direct.mae);
            assert_eq!(m.rmse, direct.rmse);
        }
        // Row-major [B=1, F=2, N=2] lays out as [[11, 13], [12, 16]]:
        // horizon 1 holds entities {11, 13} (errors 1, 3 -> mean 2) and
        // horizon 2 holds {12, 16} (errors 2, 6 -> mean 4).
        assert!((per[0].mae - 2.0).abs() < 1e-6);
        assert!((per[1].mae - 4.0).abs() < 1e-6);
    }
}
