//! Property tests for the statistics substrate.

#![allow(clippy::needless_range_loop)] // index loops mirror the matrix math

use enhancenet_stats::{kmeans, mae, mape, metrics_at_horizon, rmse, welch_t_test};
use enhancenet_tensor::Tensor;
use proptest::prelude::*;

fn series(n: usize) -> impl Strategy<Value = (Tensor, Tensor)> {
    (prop::collection::vec(1.0f32..100.0, n), prop::collection::vec(-5.0f32..5.0, n)).prop_map(
        move |(truth, noise)| {
            let t = Tensor::from_vec(truth.clone(), &[n]);
            let p = Tensor::from_vec(truth.iter().zip(&noise).map(|(a, b)| a + b).collect(), &[n]);
            (p, t)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rmse_dominates_mae((p, t) in series(16)) {
        prop_assert!(rmse(&p, &t) + 1e-5 >= mae(&p, &t));
    }

    #[test]
    fn metrics_are_nonnegative_and_zero_iff_exact((p, t) in series(16)) {
        prop_assert!(mae(&p, &t) >= 0.0);
        prop_assert!(rmse(&p, &t) >= 0.0);
        prop_assert!(mape(&p, &t) >= 0.0);
        prop_assert_eq!(mae(&t, &t), 0.0);
    }

    #[test]
    fn mae_is_translation_detectable((_, t) in series(16), shift in 0.5f32..5.0) {
        let shifted = t.add_scalar(shift);
        prop_assert!((mae(&shifted, &t) - shift).abs() < 1e-4);
    }

    #[test]
    fn metrics_scale_equivariance((p, t) in series(16), k in 1.0f32..10.0) {
        // MAE and RMSE scale linearly with the data; MAPE is invariant.
        let pk = p.mul_scalar(k);
        let tk = t.mul_scalar(k);
        prop_assert!((mae(&pk, &tk) - k * mae(&p, &t)).abs() < 1e-2 * k);
        prop_assert!((mape(&pk, &tk) - mape(&p, &t)).abs() < 1e-2);
    }

    #[test]
    fn t_test_symmetry(a in prop::collection::vec(0.0f32..10.0, 5..20),
                       b in prop::collection::vec(0.0f32..10.0, 5..20)) {
        let ab = welch_t_test(&a, &b);
        let ba = welch_t_test(&b, &a);
        prop_assert!((ab.t + ba.t).abs() < 1e-9);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&ab.p_value));
    }

    #[test]
    fn t_test_shifted_samples_get_smaller_p(base in prop::collection::vec(0.0f32..1.0, 10..20)) {
        let near: Vec<f32> = base.iter().map(|v| v + 0.1).collect();
        let far: Vec<f32> = base.iter().map(|v| v + 10.0).collect();
        let p_near = welch_t_test(&base, &near).p_value;
        let p_far = welch_t_test(&base, &far).p_value;
        prop_assert!(p_far <= p_near + 1e-12);
        prop_assert!(p_far < 1e-6);
    }

    #[test]
    fn kmeans_assignments_are_valid(seed in 0u64..100, k in 1usize..4) {
        let pts = enhancenet_tensor::TensorRng::seed(seed).normal(&[12, 3], 0.0, 1.0);
        let (assign, centroids) = kmeans(&pts, k, seed, 30);
        prop_assert_eq!(assign.len(), 12);
        prop_assert!(assign.iter().all(|&a| a < k));
        prop_assert_eq!(centroids.shape(), &[k, 3]);
        prop_assert!(!centroids.has_non_finite());
    }

    #[test]
    fn kmeans_puts_each_point_nearest_its_centroid(seed in 0u64..50) {
        let pts = enhancenet_tensor::TensorRng::seed(seed).normal(&[10, 2], 0.0, 2.0);
        let (assign, centroids) = kmeans(&pts, 3, seed, 100);
        let d2 = |i: usize, c: usize| -> f32 {
            (0..2).map(|k| (pts.at(&[i, k]) - centroids.at(&[c, k])).powi(2)).sum()
        };
        // Lloyd's algorithm terminates with every point at (one of) its
        // nearest centroids.
        for i in 0..10 {
            let own = d2(i, assign[i]);
            for c in 0..3 {
                prop_assert!(own <= d2(i, c) + 1e-4);
            }
        }
    }

    #[test]
    fn horizon_metrics_match_manual_slice(seed in 0u64..50) {
        let mut rng = enhancenet_tensor::TensorRng::seed(seed);
        let p = rng.normal(&[2, 4, 3], 50.0, 5.0);
        let t = rng.normal(&[2, 4, 3], 50.0, 5.0);
        let m = metrics_at_horizon(&p, &t, 2);
        let manual = mae(&p.index_axis(1, 1), &t.index_axis(1, 1));
        prop_assert!((m.mae - manual).abs() < 1e-5);
    }
}
