//! Property tests for the data substrate: windowing arithmetic, scaler
//! round-trips and generator invariants under arbitrary configurations.

use enhancenet_data::traffic::{generate_traffic, TrafficConfig};
use enhancenet_data::weather::{generate_weather, WeatherConfig};
use enhancenet_data::{ChronoSplit, StandardScaler, WindowDataset};
use enhancenet_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chrono_split_partitions_everything(n in 10usize..5000) {
        let s = ChronoSplit::paper(n);
        prop_assert_eq!(s.train.start, 0);
        prop_assert_eq!(s.train.end, s.val.start);
        prop_assert_eq!(s.val.end, s.test.start);
        prop_assert_eq!(s.test.end, n);
        // Proportions approximately 70/10/20.
        prop_assert!((s.train.len() as f32 / n as f32 - 0.7).abs() < 0.02);
        prop_assert!((s.test.len() as f32 / n as f32 - 0.2).abs() < 0.02);
    }

    #[test]
    fn scaler_roundtrip_arbitrary_data(
        t in 4usize..20,
        n in 1usize..5,
        seed in 0u64..1000,
    ) {
        let values = TensorRng::seed(seed).normal(&[t, n, 2], 5.0, 3.0);
        let scaler = StandardScaler::fit(&values, t).unwrap();
        let scaled = scaler.transform(&values).unwrap();
        prop_assert!(!scaled.has_non_finite());
        // Inverse of feature 0 recovers the original column.
        let f0_scaled: Vec<f32> = (0..t).map(|i| scaled.at(&[i, 0, 0])).collect();
        let back = scaler.inverse_feature(&Tensor::from_vec(f0_scaled, &[t]), 0);
        for i in 0..t {
            prop_assert!((back.at(&[i]) - values.at(&[i, 0, 0])).abs() < 1e-2);
        }
    }

    #[test]
    fn traffic_generator_invariants(sensors in 4usize..16, days in 1usize..4) {
        let ds = generate_traffic(&TrafficConfig::tiny(sensors, days));
        prop_assert_eq!(ds.num_entities(), sensors);
        prop_assert_eq!(ds.num_steps(), days * 288);
        prop_assert!(ds.values.min_all() >= 3.0);
        prop_assert!(ds.values.max_all() <= 75.0);
        ds.validate();
    }

    #[test]
    fn weather_generator_invariants(stations in 2usize..10, days in 2usize..8) {
        let ds = generate_weather(&WeatherConfig::tiny(stations, days));
        prop_assert_eq!(ds.num_entities(), stations);
        prop_assert_eq!(ds.num_steps(), days * 24);
        prop_assert_eq!(ds.num_features(), 6);
        // Kelvin temperatures stay physical.
        for step in (0..ds.num_steps()).step_by(7) {
            for e in 0..stations {
                let k = ds.values.at(&[step, e, 0]);
                prop_assert!((200.0..340.0).contains(&k), "temperature {k} K");
            }
        }
        ds.validate();
    }

    #[test]
    fn windows_tile_the_series(sensors in 3usize..8) {
        let ds = generate_traffic(&TrafficConfig::tiny(sensors, 1));
        let w = WindowDataset::from_series(&ds, 12, 12).unwrap();
        prop_assert_eq!(w.num_windows(), 288 - 23);
        // Consecutive windows shift by exactly one step.
        let w0 = w.input_window(0);
        let w1 = w.input_window(1);
        for t in 0..11 {
            for e in 0..sensors {
                prop_assert_eq!(w0.at(&[t + 1, e, 0]), w1.at(&[t, e, 0]));
            }
        }
    }

    #[test]
    fn window_target_alignment(sensors in 3usize..6, start in 0usize..100) {
        let ds = generate_traffic(&TrafficConfig::tiny(sensors, 1));
        let w = WindowDataset::from_series(&ds, 12, 12).unwrap();
        let target = w.target_window(start);
        for f in 0..12 {
            for e in 0..sensors {
                prop_assert_eq!(target.at(&[f, e]), ds.values.at(&[start + 12 + f, e, 0]));
            }
        }
    }
}
