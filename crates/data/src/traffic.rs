//! Synthetic traffic-speed generator: the *EB* / *LA* analogues.
//!
//! ## Road model
//!
//! Sensors sit along `num_corridors` straight highway corridors radiating
//! from a city centre. Each corridor has an **inbound** carriageway (towards
//! the centre, morning-peaked) and an **outbound** one (evening-peaked), so
//! adjacent sensors can have *opposite* daily profiles — the paper's §I
//! example of roads "going from rural areas downtown" vs the reverse, and
//! the reason red/black sensor clusters in Fig. 11 separate in memory space
//! despite being geographically close.
//!
//! ## Speed model (per sensor, per 5-min step)
//!
//! ```text
//! speed = free_flow · (1 − rush(t) − incidents(t)) · coupling(t) + noise
//! ```
//!
//! * `rush(t)` — a per-sensor Gaussian bump around that sensor's peak hour
//!   (direction decides morning vs evening; amplitude/width/phase jitter per
//!   sensor gives distinct dynamics).
//! * `incidents(t)` — random incidents seed congestion at a sensor and
//!   diffuse **upstream** along the corridor with a travel delay, decaying
//!   in space and time: spatially correlated and causally directed.
//! * `coupling(t)` — during the morning regime, congestion on a corridor's
//!   inbound side spills onto the *next* corridor's inbound side at the
//!   interchange; in the evening the direction of spilling reverses. The
//!   influence topology therefore changes with time of day, which is
//!   exactly the dynamic-correlation effect DAMGN models.
//!
//! Road-network distances (along corridors through the centre) feed the
//! Gaussian-kernel adjacency, matching the paper's traffic setup.

use crate::CorrelatedTimeSeries;
use enhancenet_tensor::{Tensor, TensorRng};

/// Steps per day at 5-minute sampling.
const STEPS_PER_DAY: usize = 288;

/// Configuration for the synthetic traffic network.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Number of sensors (paper: EB 182, LA 207).
    pub num_sensors: usize,
    /// Number of days of 5-minute data.
    pub num_days: usize,
    /// Highway corridors radiating from the centre.
    pub num_corridors: usize,
    /// Include a time-of-day attribute as feature 1 (the *LA* dataset's
    /// second attribute).
    pub time_feature: bool,
    /// Expected incidents per sensor per day.
    pub incident_rate: f32,
    /// Observation noise standard deviation (mph).
    pub noise_std: f32,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl TrafficConfig {
    /// Full-scale *EB* analogue: 182 sensors, 90 days, speed only.
    pub fn eb() -> Self {
        Self {
            num_sensors: 182,
            num_days: 90,
            num_corridors: 4,
            time_feature: false,
            incident_rate: 0.6,
            noise_std: 1.5,
            seed: 0xEB,
        }
    }

    /// Full-scale *LA* analogue: 207 sensors, 120 days, speed + time of day.
    pub fn la() -> Self {
        Self {
            num_sensors: 207,
            num_days: 120,
            num_corridors: 5,
            time_feature: true,
            incident_rate: 0.8,
            noise_std: 1.5,
            seed: 0x1A,
        }
    }

    /// A small configuration for unit tests and quick experiments.
    pub fn tiny(num_sensors: usize, num_days: usize) -> Self {
        Self {
            num_sensors,
            num_days,
            num_corridors: 2,
            time_feature: false,
            incident_rate: 0.8,
            noise_std: 1.0,
            seed: 7,
        }
    }
}

/// Static description of one sensor.
#[derive(Debug, Clone)]
struct Sensor {
    corridor: usize,
    /// Position along the corridor, km from the centre (0 = downtown).
    km: f32,
    /// True = towards the centre (morning peak), false = away (evening).
    inbound: bool,
    free_flow: f32,
    peak_amplitude: f32,
    /// Peak centre in hours (jittered around 8.0 or 17.0).
    peak_hour: f32,
    /// Peak width in hours.
    peak_width: f32,
    /// Weekend rush attenuation in [0, 0.4].
    weekend_factor: f32,
}

fn layout_sensors(cfg: &TrafficConfig, rng: &mut TensorRng) -> Vec<Sensor> {
    let mut sensors = Vec::with_capacity(cfg.num_sensors);
    for i in 0..cfg.num_sensors {
        let corridor = i % cfg.num_corridors;
        let slot = i / cfg.num_corridors;
        // Alternate carriageways; distance grows outwards along the slot.
        let inbound = slot % 2 == 0;
        let km = 2.0 + (slot as f32 / 2.0).floor() * 1.7 + rng.scalar(-0.3, 0.3);
        let peak_hour = if inbound { 8.0 } else { 17.0 } + rng.scalar(-1.0, 1.0);
        sensors.push(Sensor {
            corridor,
            km,
            inbound,
            free_flow: rng.scalar(58.0, 70.0),
            peak_amplitude: rng.scalar(0.35, 0.65),
            peak_hour,
            peak_width: rng.scalar(1.0, 2.0),
            weekend_factor: rng.scalar(0.05, 0.35),
        });
    }
    sensors
}

/// Coordinates of a sensor in a local km frame: corridors radiate at equal
/// angles, carriageways are offset ±80 m.
fn sensor_coords(s: &Sensor, num_corridors: usize) -> (f32, f32) {
    let angle = 2.0 * std::f32::consts::PI * s.corridor as f32 / num_corridors as f32;
    let offset = if s.inbound { 0.08 } else { -0.08 };
    let (sin, cos) = angle.sin_cos();
    (s.km * cos - offset * sin, s.km * sin + offset * cos)
}

/// Road-network distance between two sensors: along the corridor if they
/// share one, else through the centre interchange.
fn road_distance(a: &Sensor, b: &Sensor) -> f32 {
    if a.corridor == b.corridor {
        (a.km - b.km).abs() + if a.inbound == b.inbound { 0.0 } else { 0.5 }
    } else {
        a.km + b.km
    }
}

/// One active incident: congestion seeded at `sensor` that diffuses
/// upstream with a decaying profile.
struct Incident {
    sensor: usize,
    start_step: usize,
    duration: usize,
    severity: f32,
}

/// Generates the synthetic traffic dataset.
pub fn generate_traffic(cfg: &TrafficConfig) -> CorrelatedTimeSeries {
    assert!(cfg.num_sensors >= cfg.num_corridors, "need at least one sensor per corridor");
    let mut rng = TensorRng::seed(cfg.seed);
    let sensors = layout_sensors(cfg, &mut rng);
    let n = cfg.num_sensors;
    let t_total = cfg.num_days * STEPS_PER_DAY;
    let c = if cfg.time_feature { 2 } else { 1 };

    // Pre-sample incidents for the whole horizon.
    let expected = cfg.incident_rate * n as f32 * cfg.num_days as f32;
    let num_incidents = expected.round() as usize;
    let incidents: Vec<Incident> = (0..num_incidents)
        .map(|_| Incident {
            sensor: rng.index(n),
            start_step: rng.index(t_total.max(1)),
            duration: 3 + rng.index(18), // 15 min – 1.75 h
            severity: rng.scalar(0.15, 0.5),
        })
        .collect();

    // Congestion level per (step, sensor) accumulated from rush + incidents
    // + cross-corridor coupling.
    let mut congestion = vec![0.0f32; t_total * n];

    // Rush-hour component.
    for (j, s) in sensors.iter().enumerate() {
        for step in 0..t_total {
            let day = step / STEPS_PER_DAY;
            let hour = (step % STEPS_PER_DAY) as f32 * 24.0 / STEPS_PER_DAY as f32;
            let weekend = day % 7 >= 5;
            let amp = if weekend { s.peak_amplitude * s.weekend_factor } else { s.peak_amplitude };
            let z = (hour - s.peak_hour) / s.peak_width;
            congestion[step * n + j] += amp * (-0.5 * z * z).exp();
        }
    }

    // Incident diffusion: upstream sensors (same corridor+direction, larger
    // km for inbound / smaller for outbound) congest with travel-time lag.
    for inc in &incidents {
        let src = &sensors[inc.sensor];
        for (j, s) in sensors.iter().enumerate() {
            if s.corridor != src.corridor || s.inbound != src.inbound {
                continue;
            }
            let upstream_km = if src.inbound { s.km - src.km } else { src.km - s.km };
            if !(0.0..=8.0).contains(&upstream_km) {
                continue;
            }
            // Queue propagates upstream at ~12 km/h => 1 step per km.
            let lag = upstream_km.round() as usize;
            let spatial_decay = (-upstream_km / 4.0).exp();
            for dt in 0..inc.duration {
                let step = inc.start_step + lag + dt;
                if step >= t_total {
                    break;
                }
                // Triangular temporal profile.
                let frac = dt as f32 / inc.duration as f32;
                let temporal = if frac < 0.3 { frac / 0.3 } else { (1.0 - frac) / 0.7 };
                congestion[step * n + j] += inc.severity * spatial_decay * temporal.max(0.0);
            }
        }
    }

    // Time-of-day regime coupling: morning (6–11) congestion on corridor k's
    // inbound side spills onto corridor (k+1)'s inbound side; evening
    // (15–20) the coupling reverses direction. 15-minute lag.
    let corridor_mean_inbound = |cong: &[f32], step: usize, corridor: usize, inbound: bool| {
        let mut sum = 0.0f32;
        let mut count = 0usize;
        for (j, s) in sensors.iter().enumerate() {
            if s.corridor == corridor && s.inbound == inbound {
                sum += cong[step * n + j];
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f32
        }
    };
    let base = congestion.clone();
    let lag_steps = 3;
    for step in lag_steps..t_total {
        let hour = (step % STEPS_PER_DAY) as f32 * 24.0 / STEPS_PER_DAY as f32;
        let morning = (6.0..11.0).contains(&hour);
        let evening = (15.0..20.0).contains(&hour);
        if !(morning || evening) {
            continue;
        }
        for (j, s) in sensors.iter().enumerate() {
            let source_corridor = if morning {
                (s.corridor + cfg.num_corridors - 1) % cfg.num_corridors
            } else {
                (s.corridor + 1) % cfg.num_corridors
            };
            let inbound_side = morning;
            if s.inbound != inbound_side {
                continue;
            }
            let spill =
                corridor_mean_inbound(&base, step - lag_steps, source_corridor, inbound_side);
            congestion[step * n + j] += 0.35 * spill;
        }
    }

    // Convert to speeds.
    let mut values = Vec::with_capacity(t_total * n * c);
    for step in 0..t_total {
        let tod = (step % STEPS_PER_DAY) as f32 / STEPS_PER_DAY as f32;
        for (j, s) in sensors.iter().enumerate() {
            let cong = congestion[step * n + j].min(0.92);
            let noise = rng.scalar(-cfg.noise_std, cfg.noise_std);
            let speed = (s.free_flow * (1.0 - cong) + noise).clamp(3.0, 75.0);
            values.push(speed);
            if cfg.time_feature {
                values.push(tod);
            }
        }
    }

    let coords_flat: Vec<f32> = sensors
        .iter()
        .flat_map(|s| {
            let (x, y) = sensor_coords(s, cfg.num_corridors);
            [x, y]
        })
        .collect();

    let mut distances = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                distances.set(&[i, j], road_distance(&sensors[i], &sensors[j]));
            }
        }
    }

    let ds = CorrelatedTimeSeries {
        name: if cfg.time_feature { "la".into() } else { "eb".into() },
        values: Tensor::from_vec(values, &[t_total, n, c]),
        coords: Tensor::from_vec(coords_flat, &[n, 2]),
        distances,
        interval_minutes: 5,
    };
    ds.validate();
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CorrelatedTimeSeries {
        generate_traffic(&TrafficConfig::tiny(12, 3))
    }

    #[test]
    fn shape_matches_config() {
        let ds = small();
        assert_eq!(ds.num_steps(), 3 * 288);
        assert_eq!(ds.num_entities(), 12);
        assert_eq!(ds.num_features(), 1);
        assert_eq!(ds.interval_minutes, 5);
    }

    #[test]
    fn la_has_time_feature_in_unit_range() {
        let mut cfg = TrafficConfig::tiny(8, 1);
        cfg.time_feature = true;
        let ds = generate_traffic(&cfg);
        assert_eq!(ds.num_features(), 2);
        for step in 0..ds.num_steps() {
            let tod = ds.values.at(&[step, 0, 1]);
            assert!((0.0..1.0).contains(&tod));
        }
        // Time feature increases within a day.
        assert!(ds.values.at(&[100, 0, 1]) > ds.values.at(&[10, 0, 1]));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_traffic(&TrafficConfig::tiny(10, 1));
        let b = generate_traffic(&TrafficConfig::tiny(10, 1));
        assert!(a.values.allclose(&b.values, 0.0));
    }

    #[test]
    fn speeds_are_physical() {
        let ds = small();
        assert!(ds.values.min_all() >= 3.0);
        assert!(ds.values.max_all() <= 75.0);
    }

    #[test]
    fn inbound_sensors_slower_in_morning_than_midnight() {
        // Sensor 0 is inbound by construction (slot 0). Average morning-peak
        // speed over days must be clearly below the free-flow night speed.
        let ds = generate_traffic(&TrafficConfig::tiny(12, 7));
        let day_avg = |hour: usize| -> f32 {
            let mut s = 0.0;
            let mut c = 0;
            for day in 0..7 {
                let step = day * 288 + hour * 12;
                s += ds.values.at(&[step, 0, 0]);
                c += 1;
            }
            s / c as f32
        };
        assert!(day_avg(8) < day_avg(2) - 5.0, "morning {} night {}", day_avg(8), day_avg(2));
    }

    #[test]
    fn inbound_and_outbound_have_opposite_peaks() {
        // Entities 0 (inbound) and 2 (outbound, slot 1) on the same corridor
        // layout: morning dip for inbound, evening dip for outbound.
        let ds = generate_traffic(&TrafficConfig::tiny(12, 7));
        let avg_at = |entity: usize, hour: usize| -> f32 {
            (0..7).map(|d| ds.values.at(&[d * 288 + hour * 12, entity, 0])).sum::<f32>() / 7.0
        };
        // inbound: 8am slower than 5pm; outbound: reverse.
        assert!(avg_at(0, 8) < avg_at(0, 17));
        assert!(avg_at(2, 17) < avg_at(2, 8));
    }

    #[test]
    fn distances_are_road_metric() {
        let ds = small();
        // Symmetric and zero on the diagonal.
        for i in 0..4 {
            assert_eq!(ds.distances.at(&[i, i]), 0.0);
            for j in 0..4 {
                assert!((ds.distances.at(&[i, j]) - ds.distances.at(&[j, i])).abs() < 1e-5);
            }
        }
        // Cross-corridor distances go through the centre, so they exceed
        // both sensors' distance from the centre.
        assert!(ds.distances.at(&[0, 1]) >= 2.0);
    }

    #[test]
    fn weekends_are_less_congested() {
        let ds = generate_traffic(&TrafficConfig::tiny(16, 14));
        // Compare average 8am inbound speed weekdays (day 0-4) vs weekend
        // (day 5,6) over two weeks.
        let avg = |days: &[usize]| -> f32 {
            let mut s = 0.0;
            let mut c = 0;
            for &d in days {
                for e in 0..4 {
                    s += ds.values.at(&[d * 288 + 8 * 12, e, 0]);
                    c += 1;
                }
            }
            s / c as f32
        };
        let weekday = avg(&[0, 1, 2, 3, 4, 7, 8, 9, 10, 11]);
        let weekend = avg(&[5, 6, 12, 13]);
        assert!(weekend > weekday, "weekend {weekend} <= weekday {weekday}");
    }
}
