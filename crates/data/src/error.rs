//! Typed errors for the public data-construction entry points.
//!
//! The library used to `assert!` on shape mismatches, which is fine for the
//! offline experiment harness but unacceptable once windows are assembled
//! from live observations inside a serving process: a malformed request must
//! surface as a value, not a panic that poisons a worker thread. Every
//! variant carries the expected-vs-got facts needed to debug the caller.

use std::fmt;

/// Errors produced by window construction, scaling, and streaming ingest.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A tensor had the wrong rank for the operation.
    RankMismatch {
        /// What was being constructed or applied.
        context: &'static str,
        /// Required rank.
        expected: usize,
        /// Rank of the tensor actually supplied.
        got: usize,
    },
    /// A tensor (or flat observation row) had the wrong extents.
    ShapeMismatch {
        /// What was being constructed or applied.
        context: &'static str,
        /// Required extents.
        expected: Vec<usize>,
        /// Extents actually supplied.
        got: Vec<usize>,
    },
    /// The series is too short to cut a single `(H, F)` window.
    SeriesTooShort {
        /// Timestamps available.
        steps: usize,
        /// Input horizon requested.
        h: usize,
        /// Forecast horizon requested.
        f: usize,
    },
    /// The scaler was asked to fit on zero timestamps.
    EmptyFit,
    /// The feature axis does not match the fitted scaler.
    FeatureMismatch {
        /// Features the scaler was fit on.
        expected: usize,
        /// Features in the tensor supplied.
        got: usize,
    },
    /// An observation arrived for a timestamp older than anything retained.
    StaleTimestamp {
        /// Timestamp of the rejected observation.
        timestamp: i64,
        /// Oldest timestamp still held in the buffer.
        oldest: i64,
    },
    /// An entity index outside the configured entity count.
    EntityOutOfRange {
        /// Entity index supplied.
        entity: usize,
        /// Configured entity count.
        num_entities: usize,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::RankMismatch { context, expected, got } => {
                write!(f, "{context}: expected rank {expected}, got rank {got}")
            }
            DataError::ShapeMismatch { context, expected, got } => {
                write!(f, "{context}: expected shape {expected:?}, got {got:?}")
            }
            DataError::SeriesTooShort { steps, h, f: fh } => {
                write!(f, "series of {steps} steps is too short for H={h}, F={fh} (needs > H+F)")
            }
            DataError::EmptyFit => write!(f, "scaler needs at least one fit step"),
            DataError::FeatureMismatch { expected, got } => {
                write!(f, "feature count mismatch: scaler fit on {expected} features, got {got}")
            }
            DataError::StaleTimestamp { timestamp, oldest } => {
                write!(f, "observation at t={timestamp} is older than the retained window (oldest t={oldest})")
            }
            DataError::EntityOutOfRange { entity, num_entities } => {
                write!(f, "entity index {entity} out of range for {num_entities} entities")
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_expected_vs_got() {
        let e = DataError::ShapeMismatch {
            context: "window",
            expected: vec![12, 4, 1],
            got: vec![12, 3, 1],
        };
        let msg = e.to_string();
        assert!(msg.contains("[12, 4, 1]"));
        assert!(msg.contains("[12, 3, 1]"));
    }

    #[test]
    fn variants_compare_by_value() {
        assert_eq!(DataError::EmptyFit, DataError::EmptyFit);
        assert_ne!(
            DataError::FeatureMismatch { expected: 2, got: 1 },
            DataError::FeatureMismatch { expected: 2, got: 3 },
        );
    }
}
