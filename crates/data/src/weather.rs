//! Synthetic hourly weather generator: the *US* analogue (36 stations,
//! 6 attributes — temperature, humidity, pressure, wind direction, wind
//! speed, weather code).
//!
//! Stations sit on a jittered 6×6 grid. The physics planted for the
//! plugins to discover:
//!
//! * **Distinct temporal dynamics** — each station's diurnal temperature
//!   swing, seasonal amplitude and base climate depend on its latitude and
//!   "continentality" (distance from the west coast), so no single filter
//!   fits all stations.
//! * **Dynamic correlations** — synthetic weather *fronts* sweep west → east
//!   at varying speeds; a front couples stations along its path with a lag
//!   that depends on longitude difference, so which stations co-vary (and
//!   how strongly) changes across time.

use crate::CorrelatedTimeSeries;
use enhancenet_tensor::{Tensor, TensorRng};

/// Hours per day (sampling is hourly).
const STEPS_PER_DAY: usize = 24;
/// Days per synthetic year.
const DAYS_PER_YEAR: f32 = 365.0;

/// Feature indices of the generated weather attributes.
pub mod features {
    /// Temperature, Kelvin (the forecast target; the Kaggle source feed
    /// reports Kelvin).
    pub const TEMPERATURE: usize = 0;
    /// Relative humidity, 0–100 %.
    pub const HUMIDITY: usize = 1;
    /// Surface pressure, hPa.
    pub const PRESSURE: usize = 2;
    /// Wind direction, degrees 0–360.
    pub const WIND_DIR: usize = 3;
    /// Wind speed, m/s.
    pub const WIND_SPEED: usize = 4;
    /// Coarse weather code (0 clear, 1 cloudy, 2 rain, 3 storm).
    pub const WEATHER_CODE: usize = 5;
}

/// Configuration for the synthetic weather network.
#[derive(Debug, Clone)]
pub struct WeatherConfig {
    /// Number of stations (paper: 36).
    pub num_stations: usize,
    /// Days of hourly data (paper: ~5 years ≈ 1826 days).
    pub num_days: usize,
    /// Expected number of fronts per 10 days.
    pub front_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl WeatherConfig {
    /// Full-scale *US* analogue: 36 stations, 5 years.
    pub fn us() -> Self {
        Self { num_stations: 36, num_days: 1826, front_rate: 3.0, seed: 0x05 }
    }

    /// Small configuration for tests.
    pub fn tiny(num_stations: usize, num_days: usize) -> Self {
        Self { num_stations, num_days, front_rate: 4.0, seed: 11 }
    }
}

struct Station {
    /// Longitude-like coordinate, km east of the west edge.
    x: f32,
    /// Latitude-like coordinate, km north of the south edge.
    y: f32,
    base_temp: f32,
    seasonal_amp: f32,
    diurnal_amp: f32,
    base_pressure: f32,
}

struct Front {
    /// Hour at which the front reaches x = 0.
    start_hour: f32,
    /// Eastward speed, km/h.
    speed: f32,
    /// Temperature drop, °C.
    temp_drop: f32,
    /// Width of the front in hours (at a fixed station).
    width_h: f32,
    /// Latitude band centre and half-width (km).
    band_center: f32,
    band_half_width: f32,
}

fn layout_stations(cfg: &WeatherConfig, rng: &mut TensorRng) -> Vec<Station> {
    let side = (cfg.num_stations as f32).sqrt().ceil() as usize;
    let spacing = 400.0; // km
    (0..cfg.num_stations)
        .map(|i| {
            let gx = (i % side) as f32;
            let gy = (i / side) as f32;
            let x = gx * spacing + rng.scalar(-60.0, 60.0);
            let y = gy * spacing + rng.scalar(-60.0, 60.0);
            let continentality = (x / (side as f32 * spacing)).clamp(0.0, 1.0);
            let latitude = y / (side as f32 * spacing);
            Station {
                x,
                y,
                base_temp: 18.0 - 12.0 * latitude + rng.scalar(-2.0, 2.0),
                seasonal_amp: 6.0 + 10.0 * continentality + rng.scalar(-1.0, 1.0),
                diurnal_amp: 3.0 + 6.0 * continentality + rng.scalar(-0.5, 0.5),
                base_pressure: 1013.0 + rng.scalar(-4.0, 4.0),
            }
        })
        .collect()
}

/// Generates the synthetic weather dataset.
pub fn generate_weather(cfg: &WeatherConfig) -> CorrelatedTimeSeries {
    let mut rng = TensorRng::seed(cfg.seed);
    let stations = layout_stations(cfg, &mut rng);
    let n = cfg.num_stations;
    let t_total = cfg.num_days * STEPS_PER_DAY;

    // Pre-sample fronts across the whole horizon.
    let num_fronts = (cfg.front_rate * cfg.num_days as f32 / 10.0).round() as usize;
    let max_y = stations.iter().map(|s| s.y).fold(0.0f32, f32::max);
    let fronts: Vec<Front> = (0..num_fronts)
        .map(|_| Front {
            start_hour: rng.scalar(0.0, t_total as f32),
            speed: rng.scalar(25.0, 70.0),
            temp_drop: rng.scalar(4.0, 14.0),
            width_h: rng.scalar(8.0, 30.0),
            band_center: rng.scalar(0.0, max_y.max(1.0)),
            band_half_width: rng.scalar(300.0, 900.0),
        })
        .collect();

    let c = 6;
    let mut values = Vec::with_capacity(t_total * n * c);
    for step in 0..t_total {
        let hour = step as f32;
        let day_frac = (step % STEPS_PER_DAY) as f32 / STEPS_PER_DAY as f32;
        let year_frac = (step as f32 / STEPS_PER_DAY as f32) / DAYS_PER_YEAR;
        for st in &stations {
            // Front influence at this station and hour.
            let mut front_temp = 0.0f32;
            let mut front_humid = 0.0f32;
            let mut front_press = 0.0f32;
            let mut front_wind = 0.0f32;
            for f in &fronts {
                let band = ((st.y - f.band_center) / f.band_half_width).abs();
                if band > 1.0 {
                    continue;
                }
                let arrival = f.start_hour + st.x / f.speed;
                let dt = (hour - arrival) / f.width_h;
                if !(-1.5..=3.0).contains(&dt) {
                    continue;
                }
                // Sharp onset, slow recovery.
                let profile =
                    if dt < 0.0 { (1.0 + dt / 1.5).max(0.0) * 0.4 } else { (-dt / 1.5).exp() };
                let lat_fade = 1.0 - band;
                front_temp -= f.temp_drop * profile * lat_fade;
                front_humid += 35.0 * profile * lat_fade;
                front_press -= 9.0 * profile * lat_fade;
                front_wind += 6.0 * profile * lat_fade;
            }

            let seasonal =
                -(st.seasonal_amp * (2.0 * std::f32::consts::PI * (year_frac - 0.022)).cos());
            let diurnal = st.diurnal_amp * (2.0 * std::f32::consts::PI * (day_frac - 0.625)).cos();
            let temp = st.base_temp + seasonal + diurnal + front_temp + rng.scalar(-0.6, 0.6);

            let humidity =
                (62.0 - 1.2 * (temp - st.base_temp) + front_humid + rng.scalar(-4.0, 4.0))
                    .clamp(5.0, 100.0);
            let pressure = st.base_pressure + front_press + rng.scalar(-0.8, 0.8);
            let wind_speed = (3.0 + front_wind + rng.scalar(-1.0, 1.0)).max(0.0);
            // Wind backs from westerly (270°) towards southerly ahead of a
            // front; noise otherwise.
            let wind_dir = (270.0 - 60.0 * (front_wind / 6.0).min(1.0) + rng.scalar(-15.0, 15.0))
                .rem_euclid(360.0);
            let code = if front_wind > 4.0 {
                3.0
            } else if front_humid > 20.0 {
                2.0
            } else if humidity > 75.0 {
                1.0
            } else {
                0.0
            };

            // The Kaggle feed the paper uses reports temperature in Kelvin;
            // emitting Kelvin also keeps MAPE well-defined (no zero crossing).
            values.extend_from_slice(&[
                temp + 273.15,
                humidity,
                pressure,
                wind_dir,
                wind_speed,
                code,
            ]);
        }
    }

    let coords_flat: Vec<f32> = stations.iter().flat_map(|s| [s.x, s.y]).collect();
    let coords = Tensor::from_vec(coords_flat, &[n, 2]);
    // Weather uses plain Euclidean distances (§VI-A).
    let distances = enhancenet_graph::pairwise_euclidean(&coords);

    let ds = CorrelatedTimeSeries {
        name: "us".into(),
        values: Tensor::from_vec(values, &[t_total, n, c]),
        coords,
        distances,
        interval_minutes: 60,
    };
    ds.validate();
    ds
}

#[cfg(test)]
mod tests {
    use super::features::*;
    use super::*;

    fn small() -> CorrelatedTimeSeries {
        generate_weather(&WeatherConfig::tiny(9, 30))
    }

    #[test]
    fn shape_matches_config() {
        let ds = small();
        assert_eq!(ds.num_steps(), 30 * 24);
        assert_eq!(ds.num_entities(), 9);
        assert_eq!(ds.num_features(), 6);
        assert_eq!(ds.interval_minutes, 60);
        assert_eq!(ds.steps_per_day(), 24);
    }

    #[test]
    fn deterministic() {
        let a = generate_weather(&WeatherConfig::tiny(6, 5));
        let b = generate_weather(&WeatherConfig::tiny(6, 5));
        assert!(a.values.allclose(&b.values, 0.0));
    }

    #[test]
    fn humidity_and_codes_in_range() {
        let ds = small();
        for step in (0..ds.num_steps()).step_by(17) {
            for e in 0..ds.num_entities() {
                let h = ds.values.at(&[step, e, HUMIDITY]);
                assert!((5.0..=100.0).contains(&h), "humidity {h}");
                let code = ds.values.at(&[step, e, WEATHER_CODE]);
                assert!([0.0, 1.0, 2.0, 3.0].contains(&code), "code {code}");
                let wd = ds.values.at(&[step, e, WIND_DIR]);
                assert!((0.0..360.0).contains(&wd), "wind dir {wd}");
                assert!(ds.values.at(&[step, e, WIND_SPEED]) >= 0.0);
            }
        }
    }

    #[test]
    fn diurnal_cycle_afternoon_warmer_than_dawn() {
        let ds = generate_weather(&WeatherConfig::tiny(9, 60));
        let avg_hour = |h: usize| -> f32 {
            let mut s = 0.0;
            let mut c = 0;
            for d in 0..60 {
                for e in 0..9 {
                    s += ds.values.at(&[d * 24 + h, e, TEMPERATURE]);
                    c += 1;
                }
            }
            s / c as f32
        };
        assert!(avg_hour(15) > avg_hour(5) + 2.0, "15h {} vs 5h {}", avg_hour(15), avg_hour(5));
    }

    #[test]
    fn seasonal_cycle_summer_warmer_than_winter() {
        let ds = generate_weather(&WeatherConfig::tiny(9, 365));
        let month_avg = |d0: usize| -> f32 {
            let mut s = 0.0;
            let mut c = 0;
            for d in d0..d0 + 28 {
                s += ds.values.at(&[d * 24 + 12, 0, TEMPERATURE]);
                c += 1;
            }
            s / c as f32
        };
        // Day 0 ≈ 1 Jan (winter); day 182 ≈ July.
        assert!(month_avg(182) > month_avg(0) + 5.0);
    }

    #[test]
    fn fronts_move_west_to_east() {
        // Correlate each station's temperature drops with x: a front hits
        // western stations earlier. Verify using one strong synthetic front:
        // find the hour of minimum pressure for west vs east stations in a
        // window that contains a front.
        let cfg = WeatherConfig { num_stations: 9, num_days: 40, front_rate: 10.0, seed: 3 };
        let ds = generate_weather(&cfg);
        // west = station with min x, east = max x
        let xs: Vec<f32> = (0..9).map(|i| ds.coords.at(&[i, 0])).collect();
        let west = (0..9).min_by(|&a, &b| xs[a].total_cmp(&xs[b])).unwrap();
        let east = (0..9).max_by(|&a, &b| xs[a].total_cmp(&xs[b])).unwrap();
        let argmin_pressure = |e: usize| -> usize {
            (0..ds.num_steps())
                .min_by(|&a, &b| {
                    ds.values.at(&[a, e, PRESSURE]).total_cmp(&ds.values.at(&[b, e, PRESSURE]))
                })
                .unwrap()
        };
        // The deepest pressure minimum is front-driven; the eastern station
        // should not see it *before* the western one by more than a day.
        let (tw, te) = (argmin_pressure(west) as i64, argmin_pressure(east) as i64);
        assert!(te >= tw - 24, "west min at {tw}, east min at {te}");
    }

    #[test]
    fn distances_are_euclidean_of_coords() {
        let ds = small();
        let d01 = ds.distances.at(&[0, 1]);
        let dx = ds.coords.at(&[0, 0]) - ds.coords.at(&[1, 0]);
        let dy = ds.coords.at(&[0, 1]) - ds.coords.at(&[1, 1]);
        assert!((d01 - (dx * dx + dy * dy).sqrt()).abs() < 1e-3);
    }
}
