//! Online sliding-window state for serving: ingest raw observations as they
//! arrive, keep the last `H` timestamps per entity in a ring buffer, and
//! assemble model-ready `[H, N, C]` windows on demand.
//!
//! The offline path materializes every window up front ([`crate::WindowDataset`]);
//! the serving path cannot — observations arrive one entity at a time and the
//! window advances continuously. [`SlidingWindow`] holds raw (unscaled)
//! values so the scaler stays a pure view applied at window-assembly time,
//! exactly as in offline training: the same scaler, the same order of
//! operations, hence bit-identical inputs for identical observations.
//!
//! Entities that miss a timestamp are filled forward from their previous
//! observation (the standard sensor-feed convention: a silent sensor is
//! assumed unchanged until it reports again).

use crate::error::DataError;
use enhancenet_tensor::Tensor;
use std::collections::VecDeque;

/// Ring buffer of the most recent `H` observation rows over `N` entities ×
/// `C` features, keyed by a monotonically increasing timestamp.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    h: usize,
    num_entities: usize,
    num_features: usize,
    timestamps: VecDeque<i64>,
    /// One row per retained timestamp, flattened `[N * C]`, raw scale.
    rows: VecDeque<Vec<f32>>,
}

impl SlidingWindow {
    /// An empty buffer retaining up to `h` timestamps of `num_entities` ×
    /// `num_features` observations.
    pub fn new(h: usize, num_entities: usize, num_features: usize) -> Self {
        Self {
            h,
            num_entities,
            num_features,
            timestamps: VecDeque::with_capacity(h + 1),
            rows: VecDeque::with_capacity(h + 1),
        }
    }

    /// Retained timestamp count (≤ `H`).
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True when no timestamps are retained.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// True once a full `H`-step window can be assembled.
    pub fn is_ready(&self) -> bool {
        self.len() == self.h
    }

    /// Input horizon `H` this buffer was configured with.
    pub fn horizon(&self) -> usize {
        self.h
    }

    /// Newest retained timestamp.
    pub fn latest_timestamp(&self) -> Option<i64> {
        self.timestamps.back().copied()
    }

    /// Oldest retained timestamp.
    pub fn oldest_timestamp(&self) -> Option<i64> {
        self.timestamps.front().copied()
    }

    /// Ingests an observation for one entity at `timestamp`.
    ///
    /// * `timestamp` newer than anything retained opens a new row, filling
    ///   every entity forward from the previous row, then evicts the oldest
    ///   row once more than `H` are held.
    /// * `timestamp` equal to a retained timestamp updates that row in place
    ///   (late-but-not-too-late corrections).
    /// * `timestamp` older than the retained range is rejected with
    ///   [`DataError::StaleTimestamp`] — the window has moved on.
    pub fn ingest(
        &mut self,
        timestamp: i64,
        entity: usize,
        features: &[f32],
    ) -> Result<(), DataError> {
        if entity >= self.num_entities {
            return Err(DataError::EntityOutOfRange { entity, num_entities: self.num_entities });
        }
        if features.len() != self.num_features {
            return Err(DataError::ShapeMismatch {
                context: "observation features",
                expected: vec![self.num_features],
                got: vec![features.len()],
            });
        }
        match self.latest_timestamp() {
            Some(latest) if timestamp <= latest => {
                // In-place update of a retained row, or stale rejection.
                let Some(pos) = self.timestamps.iter().position(|&t| t == timestamp) else {
                    return Err(DataError::StaleTimestamp {
                        timestamp,
                        oldest: self.oldest_timestamp().expect("non-empty"),
                    });
                };
                let base = entity * self.num_features;
                self.rows[pos][base..base + self.num_features].copy_from_slice(features);
            }
            _ => {
                // New timestamp: fill forward from the newest row (zeros when
                // the buffer is empty), then write this entity's features.
                let mut row = match self.rows.back() {
                    Some(prev) => prev.clone(),
                    None => vec![0.0; self.num_entities * self.num_features],
                };
                let base = entity * self.num_features;
                row[base..base + self.num_features].copy_from_slice(features);
                self.timestamps.push_back(timestamp);
                self.rows.push_back(row);
                while self.timestamps.len() > self.h {
                    self.timestamps.pop_front();
                    self.rows.pop_front();
                }
            }
        }
        Ok(())
    }

    /// Ingests a full snapshot row (`N * C` raw values) at `timestamp` —
    /// the bulk path used when replaying a recorded series.
    pub fn ingest_row(&mut self, timestamp: i64, row: &[f32]) -> Result<(), DataError> {
        let expected = self.num_entities * self.num_features;
        if row.len() != expected {
            return Err(DataError::ShapeMismatch {
                context: "observation row",
                expected: vec![self.num_entities, self.num_features],
                got: vec![row.len()],
            });
        }
        if let Some(latest) = self.latest_timestamp() {
            if timestamp <= latest {
                let Some(pos) = self.timestamps.iter().position(|&t| t == timestamp) else {
                    return Err(DataError::StaleTimestamp {
                        timestamp,
                        oldest: self.oldest_timestamp().expect("non-empty"),
                    });
                };
                self.rows[pos].copy_from_slice(row);
                return Ok(());
            }
        }
        self.timestamps.push_back(timestamp);
        self.rows.push_back(row.to_vec());
        while self.timestamps.len() > self.h {
            self.timestamps.pop_front();
            self.rows.pop_front();
        }
        Ok(())
    }

    /// Drops retained rows with timestamps strictly before `cutoff` (e.g.
    /// when a feed gap makes old context misleading). The buffer reports
    /// not-ready until it refills.
    pub fn evict_before(&mut self, cutoff: i64) {
        while self.timestamps.front().is_some_and(|&t| t < cutoff) {
            self.timestamps.pop_front();
            self.rows.pop_front();
        }
    }

    /// Assembles the raw `[H, N, C]` window, oldest timestamp first.
    /// `None` until `H` timestamps have been retained.
    pub fn window(&self) -> Option<Tensor> {
        if !self.is_ready() {
            return None;
        }
        let mut flat = Vec::with_capacity(self.h * self.num_entities * self.num_features);
        for row in &self.rows {
            flat.extend_from_slice(row);
        }
        Some(Tensor::from_vec(flat, &[self.h, self.num_entities, self.num_features]))
    }

    /// Persistence forecast `[F, N]` in the raw scale: repeat each entity's
    /// most recent observation of `target_feature` for `f` steps. This is
    /// the graceful-degradation fallback — always available once a single
    /// observation exists.
    pub fn persistence_forecast(&self, f: usize, target_feature: usize) -> Option<Tensor> {
        let last = self.rows.back()?;
        if target_feature >= self.num_features {
            return None;
        }
        let mut flat = Vec::with_capacity(f * self.num_entities);
        for _ in 0..f {
            for e in 0..self.num_entities {
                flat.push(last[e * self.num_features + target_feature]);
            }
        }
        Some(Tensor::from_vec(flat, &[f, self.num_entities]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(v: f32) -> [f32; 2] {
        [v, v * 10.0]
    }

    #[test]
    fn fills_and_reports_ready() {
        let mut w = SlidingWindow::new(3, 2, 2);
        assert!(!w.is_ready());
        for t in 0..3 {
            w.ingest(t, 0, &obs(t as f32)).unwrap();
            w.ingest(t, 1, &obs(t as f32 + 100.0)).unwrap();
        }
        assert!(w.is_ready());
        let win = w.window().unwrap();
        assert_eq!(win.shape(), &[3, 2, 2]);
        assert_eq!(win.at(&[0, 0, 0]), 0.0);
        assert_eq!(win.at(&[2, 1, 1]), 1020.0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut w = SlidingWindow::new(2, 1, 1);
        for t in 0..5 {
            w.ingest(t, 0, &[t as f32]).unwrap();
        }
        assert_eq!(w.oldest_timestamp(), Some(3));
        assert_eq!(w.latest_timestamp(), Some(4));
        let win = w.window().unwrap();
        assert_eq!(win.at(&[0, 0, 0]), 3.0);
        assert_eq!(win.at(&[1, 0, 0]), 4.0);
    }

    #[test]
    fn missing_entity_fills_forward() {
        let mut w = SlidingWindow::new(2, 2, 1);
        w.ingest(0, 0, &[5.0]).unwrap();
        w.ingest(0, 1, &[7.0]).unwrap();
        // Entity 1 silent at t=1: carries 7.0 forward.
        w.ingest(1, 0, &[6.0]).unwrap();
        let win = w.window().unwrap();
        assert_eq!(win.at(&[1, 0, 0]), 6.0);
        assert_eq!(win.at(&[1, 1, 0]), 7.0);
    }

    #[test]
    fn same_timestamp_updates_in_place() {
        let mut w = SlidingWindow::new(2, 1, 1);
        w.ingest(0, 0, &[1.0]).unwrap();
        w.ingest(1, 0, &[2.0]).unwrap();
        w.ingest(0, 0, &[9.0]).unwrap(); // late correction
        let win = w.window().unwrap();
        assert_eq!(win.at(&[0, 0, 0]), 9.0);
        assert_eq!(win.at(&[1, 0, 0]), 2.0);
    }

    #[test]
    fn stale_timestamp_is_rejected() {
        let mut w = SlidingWindow::new(2, 1, 1);
        for t in 0..4 {
            w.ingest(t, 0, &[t as f32]).unwrap();
        }
        match w.ingest(0, 0, &[99.0]) {
            Err(DataError::StaleTimestamp { timestamp: 0, oldest: 2 }) => {}
            other => panic!("expected StaleTimestamp, got {other:?}"),
        }
    }

    #[test]
    fn shape_errors_are_typed() {
        let mut w = SlidingWindow::new(2, 2, 2);
        match w.ingest(0, 5, &[1.0, 2.0]) {
            Err(DataError::EntityOutOfRange { entity: 5, num_entities: 2 }) => {}
            other => panic!("expected EntityOutOfRange, got {other:?}"),
        }
        match w.ingest(0, 0, &[1.0]) {
            Err(DataError::ShapeMismatch { expected, got, .. }) => {
                assert_eq!(expected, vec![2]);
                assert_eq!(got, vec![1]);
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn evict_before_clears_old_context() {
        let mut w = SlidingWindow::new(3, 1, 1);
        for t in 0..3 {
            w.ingest(t, 0, &[t as f32]).unwrap();
        }
        assert!(w.is_ready());
        w.evict_before(2);
        assert!(!w.is_ready());
        assert_eq!(w.len(), 1);
        assert_eq!(w.oldest_timestamp(), Some(2));
    }

    #[test]
    fn persistence_repeats_last_observation() {
        let mut w = SlidingWindow::new(3, 2, 2);
        w.ingest(0, 0, &[3.0, 30.0]).unwrap();
        w.ingest(0, 1, &[4.0, 40.0]).unwrap();
        let p = w.persistence_forecast(2, 0).unwrap();
        assert_eq!(p.shape(), &[2, 2]);
        assert_eq!(p.at(&[0, 0]), 3.0);
        assert_eq!(p.at(&[1, 1]), 4.0);
    }

    #[test]
    fn ingest_row_bulk_path_matches_per_entity() {
        let mut a = SlidingWindow::new(2, 2, 1);
        let mut b = SlidingWindow::new(2, 2, 1);
        for t in 0..2i64 {
            let row = [t as f32, t as f32 + 10.0];
            a.ingest_row(t, &row).unwrap();
            b.ingest(t, 0, &row[0..1]).unwrap();
            b.ingest(t, 1, &row[1..2]).unwrap();
        }
        let wa = a.window().unwrap();
        let wb = b.window().unwrap();
        assert_eq!(wa.data(), wb.data());
    }
}
