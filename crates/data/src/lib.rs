//! # enhancenet-data
//!
//! Data substrate for the EnhanceNet reproduction: deterministic synthetic
//! generators standing in for the paper's three datasets, plus windowing,
//! chronological splitting, scaling, and batching.
//!
//! ## Why synthetic data (and why it is a faithful substitute)
//!
//! The paper evaluates on PEMS East-Bay (*EB*: 182 sensors, 3 months,
//! 5-minute speeds), METR-LA (*LA*: 207 sensors, 4 months, speed + time) and
//! a Kaggle weather feed (*US*: 36 stations, 5 years, 6 attributes). Those
//! feeds are not redistributable here, so [`traffic`] and [`weather`]
//! synthesize series with the same shape (N, C, sampling interval) **and the
//! same causal structure the paper's contributions target**:
//!
//! * *distinct per-entity temporal dynamics* — inbound sensors peak in the
//!   morning, outbound sensors in the evening, with per-sensor peak
//!   strength/width (the DFGN motivation, Fig. 1 and §I), and
//! * *time-varying spatial correlation* — congestion events diffuse along
//!   corridors, and cross-corridor coupling switches with the time of day
//!   (the DAMGN motivation).
//!
//! A model family able to exploit these effects should therefore beat one
//! that cannot, reproducing the *shape* of the paper's Tables I–III.
//!
//! Generators also emit sensor coordinates so Figure 11 (entity locations
//! coloured by learned-memory cluster) can be regenerated.

pub mod batch;
pub mod error;
pub mod grid;
pub mod io;
pub mod scaler;
pub mod stream;
pub mod traffic;
pub mod weather;
pub mod window;

pub use batch::{Batch, BatchIterator};
pub use error::DataError;
pub use grid::{generate_grid_series, GridConfig, GridSeries};
pub use io::{coords_to_csv, from_csv, values_to_csv, CsvError};
pub use scaler::StandardScaler;
pub use stream::SlidingWindow;
pub use window::{ChronoSplit, WindowDataset};

use enhancenet_tensor::Tensor;

/// A correlated time series over `N` entities: values `[T, N, C]`, entity
/// coordinates `[N, 2]`, and the pairwise distance matrix the paper derives
/// its adjacency from.
#[derive(Debug, Clone)]
pub struct CorrelatedTimeSeries {
    /// Dataset tag (`"eb"`, `"la"`, `"us"`, or a test name).
    pub name: String,
    /// Observations, `[T, N, C]` — feature 0 is the forecast target.
    pub values: Tensor,
    /// Entity coordinates `[N, 2]` (km in a local frame).
    pub coords: Tensor,
    /// Pairwise distances `[N, N]` (road-network distances for traffic,
    /// Euclidean for weather — §VI-A).
    pub distances: Tensor,
    /// Minutes between consecutive timestamps (5 for traffic, 60 for
    /// weather).
    pub interval_minutes: u32,
}

impl CorrelatedTimeSeries {
    /// Number of timestamps.
    pub fn num_steps(&self) -> usize {
        self.values.shape()[0]
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.values.shape()[1]
    }

    /// Number of attributes per entity per timestamp.
    pub fn num_features(&self) -> usize {
        self.values.shape()[2]
    }

    /// Timestamps per day at this sampling interval.
    pub fn steps_per_day(&self) -> usize {
        (24 * 60 / self.interval_minutes) as usize
    }

    /// Sanity check used by tests and the experiment harness.
    pub fn validate(&self) {
        let (t, n, _c) = (self.num_steps(), self.num_entities(), self.num_features());
        assert!(t > 0 && n > 0, "{}: empty dataset", self.name);
        assert_eq!(self.coords.shape(), &[n, 2], "{}: bad coords shape", self.name);
        assert_eq!(self.distances.shape(), &[n, n], "{}: bad distances shape", self.name);
        assert!(!self.values.has_non_finite(), "{}: dataset contains NaN/inf values", self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_report_shape() {
        let ds = CorrelatedTimeSeries {
            name: "t".into(),
            values: Tensor::zeros(&[10, 4, 2]),
            coords: Tensor::zeros(&[4, 2]),
            distances: Tensor::zeros(&[4, 4]),
            interval_minutes: 5,
        };
        assert_eq!(ds.num_steps(), 10);
        assert_eq!(ds.num_entities(), 4);
        assert_eq!(ds.num_features(), 2);
        assert_eq!(ds.steps_per_day(), 288);
        ds.validate();
    }

    #[test]
    #[should_panic(expected = "bad coords shape")]
    fn validate_rejects_mismatched_coords() {
        let ds = CorrelatedTimeSeries {
            name: "t".into(),
            values: Tensor::zeros(&[10, 4, 1]),
            coords: Tensor::zeros(&[3, 2]),
            distances: Tensor::zeros(&[4, 4]),
            interval_minutes: 60,
        };
        ds.validate();
    }
}
