//! CSV interchange for correlated time series, so the library can be used
//! on real feeds (PEMS exports, METR-LA dumps, weather station logs) and
//! not just the built-in generators.
//!
//! Two files describe a dataset:
//!
//! * **values** — wide CSV: one row per timestamp, columns
//!   `e{i}_f{j}` for entity `i`, feature `j` (feature 0 is the forecast
//!   target), e.g. `e0_f0,e0_f1,e1_f0,e1_f1,…`.
//! * **coords** — one row per entity: `entity,x,y`.
//!
//! Distances are recomputed from the coordinates with the Euclidean metric
//! (use [`CorrelatedTimeSeries`] directly when you have road-network
//! distances).

use crate::CorrelatedTimeSeries;
use enhancenet_graph::pairwise_euclidean;
use enhancenet_tensor::Tensor;

/// Errors from CSV parsing.
#[derive(Debug, PartialEq, Eq)]
pub enum CsvError {
    /// The values file had no header row.
    MissingHeader,
    /// A header column was not of the form `e{i}_f{j}`.
    BadColumn(String),
    /// Header columns do not form a dense `N × C` grid in row-major order.
    BadColumnLayout,
    /// A data row had the wrong number of fields.
    BadRow { line: usize, expected: usize, found: usize },
    /// A value failed to parse as a float.
    BadNumber { line: usize, column: usize },
    /// The coords file disagrees with the values header about N.
    CoordsMismatch { expected: usize, found: usize },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "values CSV is empty"),
            CsvError::BadColumn(c) => write!(f, "column {c:?} is not of the form e<i>_f<j>"),
            CsvError::BadColumnLayout => {
                write!(f, "columns must enumerate e0_f0..e{{N-1}}_f{{C-1}} densely")
            }
            CsvError::BadRow { line, expected, found } => {
                write!(f, "line {line}: expected {expected} fields, found {found}")
            }
            CsvError::BadNumber { line, column } => {
                write!(f, "line {line}, column {column}: not a number")
            }
            CsvError::CoordsMismatch { expected, found } => {
                write!(f, "coords file has {found} entities, values header implies {expected}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Serializes the values of a series as a wide CSV (with header).
pub fn values_to_csv(ds: &CorrelatedTimeSeries) -> String {
    let (t, n, c) = (ds.num_steps(), ds.num_entities(), ds.num_features());
    let mut out = String::new();
    let header: Vec<String> =
        (0..n).flat_map(|e| (0..c).map(move |f| format!("e{e}_f{f}"))).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for step in 0..t {
        let row: Vec<String> = (0..n)
            .flat_map(|e| (0..c).map(move |f| format!("{}", ds.values.at(&[step, e, f]))))
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Serializes entity coordinates as `entity,x,y` CSV.
pub fn coords_to_csv(ds: &CorrelatedTimeSeries) -> String {
    let mut out = String::from("entity,x,y\n");
    for e in 0..ds.num_entities() {
        out.push_str(&format!("{e},{},{}\n", ds.coords.at(&[e, 0]), ds.coords.at(&[e, 1])));
    }
    out
}

fn parse_column(name: &str) -> Option<(usize, usize)> {
    let rest = name.strip_prefix('e')?;
    let (e, f) = rest.split_once("_f")?;
    Some((e.parse().ok()?, f.parse().ok()?))
}

/// Parses a wide values CSV and a coords CSV back into a series.
pub fn from_csv(
    name: impl Into<String>,
    values_csv: &str,
    coords_csv: &str,
    interval_minutes: u32,
) -> Result<CorrelatedTimeSeries, CsvError> {
    let mut lines = values_csv.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or(CsvError::MissingHeader)?;
    let cols: Vec<(usize, usize)> = header
        .split(',')
        .map(|c| parse_column(c.trim()).ok_or_else(|| CsvError::BadColumn(c.to_string())))
        .collect::<Result<_, _>>()?;
    let n = cols.iter().map(|&(e, _)| e + 1).max().unwrap_or(0);
    let c = cols.iter().map(|&(_, f)| f + 1).max().unwrap_or(0);
    // Row-major dense layout check.
    let expected: Vec<(usize, usize)> = (0..n).flat_map(|e| (0..c).map(move |f| (e, f))).collect();
    if cols != expected {
        return Err(CsvError::BadColumnLayout);
    }

    let mut data: Vec<f32> = Vec::new();
    let mut t = 0usize;
    for (line_idx, line) in lines.enumerate() {
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != n * c {
            return Err(CsvError::BadRow {
                line: line_idx + 2,
                expected: n * c,
                found: fields.len(),
            });
        }
        for (col_idx, field) in fields.iter().enumerate() {
            let v: f32 = field
                .trim()
                .parse()
                .map_err(|_| CsvError::BadNumber { line: line_idx + 2, column: col_idx + 1 })?;
            data.push(v);
        }
        t += 1;
    }

    // Coords.
    let mut coords = vec![0.0f32; n * 2];
    let mut found = 0usize;
    for (line_idx, line) in coords_csv.lines().enumerate() {
        if line_idx == 0 || line.trim().is_empty() {
            continue; // header
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 3 {
            return Err(CsvError::BadRow { line: line_idx + 1, expected: 3, found: fields.len() });
        }
        let e: usize = fields[0]
            .trim()
            .parse()
            .map_err(|_| CsvError::BadNumber { line: line_idx + 1, column: 1 })?;
        if e >= n {
            return Err(CsvError::CoordsMismatch { expected: n, found: e + 1 });
        }
        for (k, field) in fields[1..].iter().enumerate() {
            coords[e * 2 + k] = field
                .trim()
                .parse()
                .map_err(|_| CsvError::BadNumber { line: line_idx + 1, column: k + 2 })?;
        }
        found += 1;
    }
    if found != n {
        return Err(CsvError::CoordsMismatch { expected: n, found });
    }

    let coords = Tensor::from_vec(coords, &[n, 2]);
    let distances = pairwise_euclidean(&coords);
    let ds = CorrelatedTimeSeries {
        name: name.into(),
        values: Tensor::from_vec(data, &[t, n, c]),
        coords,
        distances,
        interval_minutes,
    };
    ds.validate();
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{generate_traffic, TrafficConfig};

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = generate_traffic(&TrafficConfig::tiny(4, 1));
        let values_csv = values_to_csv(&ds);
        let coords_csv = coords_to_csv(&ds);
        let back = from_csv("roundtrip", &values_csv, &coords_csv, 5).unwrap();
        assert_eq!(back.num_steps(), ds.num_steps());
        assert_eq!(back.num_entities(), 4);
        assert!(back.values.allclose(&ds.values, 1e-3));
        assert!(back.coords.allclose(&ds.coords, 1e-3));
    }

    #[test]
    fn parses_hand_written_csv() {
        let values = "e0_f0,e0_f1,e1_f0,e1_f1\n1,2,3,4\n5,6,7,8\n";
        let coords = "entity,x,y\n0,0.0,0.0\n1,3.0,4.0\n";
        let ds = from_csv("hand", values, coords, 60).unwrap();
        assert_eq!(ds.num_steps(), 2);
        assert_eq!(ds.num_entities(), 2);
        assert_eq!(ds.num_features(), 2);
        assert_eq!(ds.values.at(&[1, 1, 0]), 7.0);
        assert!((ds.distances.at(&[0, 1]) - 5.0).abs() < 1e-5);
    }

    #[test]
    fn rejects_bad_header() {
        let err = from_csv("x", "speed,flow\n1,2\n", "entity,x,y\n0,0,0\n", 5).unwrap_err();
        assert!(matches!(err, CsvError::BadColumn(_)));
    }

    #[test]
    fn rejects_sparse_column_layout() {
        // Missing e0_f1 given e1 has two features.
        let err = from_csv("x", "e0_f0,e1_f0,e1_f1\n1,2,3\n", "entity,x,y\n0,0,0\n1,1,1\n", 5)
            .unwrap_err();
        assert_eq!(err, CsvError::BadColumnLayout);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err =
            from_csv("x", "e0_f0,e1_f0\n1,2\n3\n", "entity,x,y\n0,0,0\n1,1,1\n", 5).unwrap_err();
        assert!(matches!(err, CsvError::BadRow { line: 3, .. }));
    }

    #[test]
    fn rejects_non_numeric_values() {
        let err = from_csv("x", "e0_f0\n1\nnope\n", "entity,x,y\n0,0,0\n", 5).unwrap_err();
        assert!(matches!(err, CsvError::BadNumber { line: 3, column: 1 }));
    }

    #[test]
    fn rejects_missing_coords() {
        let err = from_csv("x", "e0_f0,e1_f0\n1,2\n", "entity,x,y\n0,0,0\n", 5).unwrap_err();
        assert!(matches!(err, CsvError::CoordsMismatch { expected: 2, found: 1 }));
    }
}
