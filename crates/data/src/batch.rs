//! Mini-batch assembly over window datasets.

use crate::window::WindowDataset;
use enhancenet_tensor::{Tensor, TensorRng};

/// One training/evaluation batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Scaled inputs `[B, H, N, C]`.
    pub x: Tensor,
    /// Raw-scale targets `[B, F, N]`.
    pub y_raw: Tensor,
    /// Scaled targets `[B, F, N]` (decoder teacher forcing).
    pub y_scaled: Tensor,
    /// Window start indices included in this batch.
    pub starts: Vec<usize>,
}

/// Iterates over a set of window starts in mini-batches, optionally
/// shuffling each epoch.
pub struct BatchIterator<'a> {
    data: &'a WindowDataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl<'a> BatchIterator<'a> {
    /// Sequential iteration over `starts` (evaluation).
    pub fn sequential(
        data: &'a WindowDataset,
        starts: impl Iterator<Item = usize>,
        batch_size: usize,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self { data, order: starts.collect(), batch_size, cursor: 0 }
    }

    /// Shuffled iteration (training); the permutation is drawn from `rng`.
    pub fn shuffled(
        data: &'a WindowDataset,
        starts: impl Iterator<Item = usize>,
        batch_size: usize,
        rng: &mut TensorRng,
    ) -> Self {
        let mut it = Self::sequential(data, starts, batch_size);
        let perm = rng.permutation(it.order.len());
        it.order = perm.into_iter().map(|i| it.order[i]).collect();
        it
    }

    /// Number of batches this iterator will yield.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }

    fn assemble(&self, starts: &[usize]) -> Batch {
        let xs: Vec<Tensor> = starts.iter().map(|&s| self.data.input_window(s)).collect();
        let ys: Vec<Tensor> = starts.iter().map(|&s| self.data.target_window(s)).collect();
        let yss: Vec<Tensor> = starts.iter().map(|&s| self.data.scaled_target_window(s)).collect();
        Batch {
            x: Tensor::stack(&xs.iter().collect::<Vec<_>>()),
            y_raw: Tensor::stack(&ys.iter().collect::<Vec<_>>()),
            y_scaled: Tensor::stack(&yss.iter().collect::<Vec<_>>()),
            starts: starts.to_vec(),
        }
    }
}

impl Iterator for BatchIterator<'_> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let batch = self.assemble(&self.order[self.cursor..end]);
        self.cursor = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{generate_traffic, TrafficConfig};
    use crate::window::WindowDataset;

    fn dataset() -> WindowDataset {
        let ds = generate_traffic(&TrafficConfig::tiny(4, 1));
        WindowDataset::from_series(&ds, 12, 12).unwrap()
    }

    #[test]
    fn batch_shapes() {
        let w = dataset();
        let mut it = BatchIterator::sequential(&w, 0..10, 4);
        let b = it.next().unwrap();
        assert_eq!(b.x.shape(), &[4, 12, 4, 1]);
        assert_eq!(b.y_raw.shape(), &[4, 12, 4]);
        assert_eq!(b.y_scaled.shape(), &[4, 12, 4]);
        assert_eq!(b.starts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn last_batch_may_be_smaller() {
        let w = dataset();
        let it = BatchIterator::sequential(&w, 0..10, 4);
        assert_eq!(it.num_batches(), 3);
        let sizes: Vec<usize> =
            BatchIterator::sequential(&w, 0..10, 4).map(|b| b.starts.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn shuffled_covers_all_starts_once() {
        let w = dataset();
        let mut rng = TensorRng::seed(1);
        let mut seen: Vec<usize> =
            BatchIterator::shuffled(&w, 0..25, 4, &mut rng).flat_map(|b| b.starts).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn shuffling_changes_order_but_not_content() {
        let w = dataset();
        let mut rng = TensorRng::seed(2);
        let shuffled: Vec<usize> =
            BatchIterator::shuffled(&w, 0..50, 50, &mut rng).flat_map(|b| b.starts).collect();
        assert_ne!(shuffled, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn batch_content_matches_windows() {
        let w = dataset();
        let b = BatchIterator::sequential(&w, 5..7, 2).next().unwrap();
        let w5 = w.input_window(5);
        assert_eq!(b.x.index_axis(0, 0).data(), w5.data());
        let t6 = w.target_window(6);
        assert_eq!(b.y_raw.index_axis(0, 1).data(), t6.data());
    }
}
