//! Grid-based synthetic correlated series for large entity counts
//! (`N = 10k–50k`), used by the sub-quadratic dynamic-graph benchmarks.
//!
//! [`CorrelatedTimeSeries`](crate::CorrelatedTimeSeries) carries a dense
//! `[N, N]` distance matrix — 10 GB of f32 at `N = 50k` — so the scaling
//! path needs a generator that never materializes pairwise distances.
//! Entities sit on a jittered `√N × √N` grid; the adjacency is the
//! row-normalized Gaussian kernel over each entity's **grid neighborhood**
//! (at most 8 neighbors, found by cell arithmetic, not by scanning all
//! pairs), built directly in CSR form in `O(N)`.
//!
//! The signal mixes a handful of latent regional waves whose per-entity
//! amplitudes vary smoothly over the grid, so nearby entities are strongly
//! correlated (what the graph models) while far-apart regions drift out of
//! phase — the correlated-time-series structure of §III-A at benchmark
//! scale.

use enhancenet_tensor::{CsrMatrix, Tensor, TensorRng};

/// Configuration for the large-`N` grid generator.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Number of entities (placed on a `⌈√N⌉ × ⌈√N⌉` grid).
    pub num_entities: usize,
    /// Number of timestamps.
    pub num_steps: usize,
    /// Latent regional waves mixed into each entity's signal.
    pub num_waves: usize,
    /// Observation noise standard deviation.
    pub noise_std: f32,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl GridConfig {
    /// Defaults for an `N`-entity, `T`-step series.
    pub fn new(num_entities: usize, num_steps: usize) -> Self {
        Self { num_entities, num_steps, num_waves: 4, noise_std: 0.05, seed: 42 }
    }
}

/// A generated large-`N` series: values, entity coordinates, and the
/// sparse row-normalized adjacency.
pub struct GridSeries {
    /// Observations `[T, N, 1]`.
    pub values: Tensor,
    /// Entity coordinates `[N, 2]` (grid units, jittered).
    pub coords: Tensor,
    /// Row-normalized Gaussian-kernel transition adjacency over the grid
    /// neighborhood, in CSR form (≤ 8 off-diagonal entries per row).
    pub adjacency: CsrMatrix,
}

/// Generates a grid series per `cfg`. `O(N·T·W)` time, `O(N·T)` memory —
/// no `[N, N]` intermediate at any point.
pub fn generate_grid_series(cfg: &GridConfig) -> GridSeries {
    let n = cfg.num_entities;
    let t = cfg.num_steps;
    assert!(n > 0 && t > 0, "grid series needs entities and steps");
    let side = (n as f64).sqrt().ceil() as usize;
    let mut rng = TensorRng::seed(cfg.seed);

    // Jittered grid coordinates.
    let jitter = rng.uniform(&[n, 2], -0.3, 0.3);
    let mut coords = vec![0.0f32; n * 2];
    for i in 0..n {
        coords[i * 2] = (i % side) as f32 + jitter.data()[i * 2];
        coords[i * 2 + 1] = (i / side) as f32 + jitter.data()[i * 2 + 1];
    }
    let coords = Tensor::from_vec(coords, &[n, 2]);

    // CSR adjacency over the 8-neighborhood, Gaussian kernel on the
    // jittered distances, rows normalized to transition form.
    let cd = coords.data();
    let rows: Vec<Vec<(u32, f32)>> = (0..n)
        .map(|i| {
            let (gx, gy) = ((i % side) as isize, (i / side) as isize);
            let mut row: Vec<(u32, f32)> = Vec::with_capacity(8);
            for dy in -1..=1isize {
                for dx in -1..=1isize {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let (nx, ny) = (gx + dx, gy + dy);
                    if nx < 0 || ny < 0 || nx >= side as isize {
                        continue;
                    }
                    let j = ny as usize * side + nx as usize;
                    if j >= n {
                        continue;
                    }
                    let (ex, ey) = (cd[i * 2] - cd[j * 2], cd[i * 2 + 1] - cd[j * 2 + 1]);
                    let w = (-(ex * ex + ey * ey)).exp();
                    row.push((j as u32, w));
                }
            }
            let total: f32 = row.iter().map(|&(_, w)| w).sum();
            if total > 0.0 {
                for e in row.iter_mut() {
                    e.1 /= total;
                }
            }
            row.sort_unstable_by_key(|&(c, _)| c);
            row
        })
        .collect();
    let adjacency = CsrMatrix::from_rows(n, n, &rows);

    // Latent regional waves: per-entity amplitudes vary smoothly with the
    // grid position, so neighbors share dynamics.
    let w = cfg.num_waves.max(1);
    let scale = side.max(1) as f32;
    let mut amps = vec![0.0f32; n * w];
    for i in 0..n {
        let (x, y) = (cd[i * 2] / scale, cd[i * 2 + 1] / scale);
        for k in 0..w {
            let f = (k + 1) as f32;
            amps[i * w + k] = 0.5 + 0.5 * (f * (2.1 * x + 1.3 * y) + 0.7 * f).sin();
        }
    }
    let noise = rng.normal(&[t, n], 0.0, cfg.noise_std);
    let mut values = vec![0.0f32; t * n];
    for step in 0..t {
        let tt = step as f32;
        // One phase per wave per step; entity loop only mixes amplitudes.
        let phases: Vec<f32> = (0..w)
            .map(|k| {
                let period = 16.0 * (k + 1) as f32;
                (std::f32::consts::TAU * tt / period).sin()
            })
            .collect();
        for i in 0..n {
            let mut v = 0.0;
            for (k, &p) in phases.iter().enumerate() {
                v += amps[i * w + k] * p;
            }
            values[step * n + i] = v + noise.data()[step * n + i];
        }
    }
    let values = Tensor::from_vec(values, &[t, n, 1]);
    GridSeries { values, coords, adjacency }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corr(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len() as f32;
        let (ma, mb) = (a.iter().sum::<f32>() / n, b.iter().sum::<f32>() / n);
        let (mut num, mut da, mut db) = (0.0f32, 0.0f32, 0.0f32);
        for (&x, &y) in a.iter().zip(b) {
            num += (x - ma) * (y - mb);
            da += (x - ma) * (x - ma);
            db += (y - mb) * (y - mb);
        }
        num / (da.sqrt() * db.sqrt()).max(1e-9)
    }

    #[test]
    fn shapes_and_sparsity() {
        let s = generate_grid_series(&GridConfig::new(400, 48));
        assert_eq!(s.values.shape(), &[48, 400, 1]);
        assert_eq!(s.coords.shape(), &[400, 2]);
        assert_eq!(s.adjacency.rows(), 400);
        assert!(s.adjacency.nnz() <= 400 * 8, "nnz {} exceeds 8/row", s.adjacency.nnz());
        assert!(s.adjacency.nnz() >= 400 * 3, "grid rows should have ≥3 neighbors");
    }

    #[test]
    fn adjacency_rows_are_transitions() {
        let s = generate_grid_series(&GridConfig::new(100, 8));
        for i in 0..100 {
            let (_, vals) = s.adjacency.row(i);
            let sum: f32 = vals.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate_grid_series(&GridConfig::new(64, 16));
        let b = generate_grid_series(&GridConfig::new(64, 16));
        assert_eq!(a.values.data(), b.values.data());
    }

    #[test]
    fn neighbors_correlate_more_than_distant_entities() {
        let cfg = GridConfig::new(400, 64);
        let s = generate_grid_series(&cfg);
        let series_of =
            |i: usize| -> Vec<f32> { (0..64).map(|t| s.values.at(&[t, i, 0])).collect() };
        // Entity 0's grid neighbor vs the far corner.
        let near = corr(&series_of(0), &series_of(1));
        let far = corr(&series_of(0), &series_of(399));
        assert!(near > far, "neighbor correlation {near} should exceed distant correlation {far}");
    }

    #[test]
    fn scales_without_dense_intermediates() {
        // 10k entities: linear-cost smoke (a dense adjacency would be 400MB).
        let s = generate_grid_series(&GridConfig::new(10_000, 4));
        assert_eq!(s.values.shape(), &[4, 10_000, 1]);
        assert!(s.adjacency.nnz() < 10_000 * 9);
    }
}
