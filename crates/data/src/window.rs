//! Sliding-window forecasting views and the 70/10/20 chronological split
//! (§VI-A "The three datasets are split chronologically into 3 partitions").

use crate::error::DataError;
use crate::scaler::StandardScaler;
use crate::CorrelatedTimeSeries;
use enhancenet_tensor::Tensor;
use std::ops::Range;

/// Window-start index ranges for the chronological train/val/test split.
#[derive(Debug, Clone)]
pub struct ChronoSplit {
    /// Training window starts.
    pub train: Range<usize>,
    /// Validation window starts.
    pub val: Range<usize>,
    /// Test window starts.
    pub test: Range<usize>,
}

impl ChronoSplit {
    /// Splits `num_windows` chronologically with the paper's 70/10/20
    /// proportions.
    pub fn paper(num_windows: usize) -> Self {
        Self::new(num_windows, 0.7, 0.1)
    }

    /// Splits with explicit train and validation fractions (the rest is
    /// test).
    pub fn new(num_windows: usize, train_frac: f32, val_frac: f32) -> Self {
        assert!(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0);
        let train_end = (num_windows as f32 * train_frac) as usize;
        let val_end = (num_windows as f32 * (train_frac + val_frac)) as usize;
        Self { train: 0..train_end, val: train_end..val_end, test: val_end..num_windows }
    }
}

/// A sliding-window forecasting dataset over a scaled series: inputs of `H`
/// timestamps predict the next `F` timestamps of the target feature
/// (`X_H → X_F`, §III-A).
pub struct WindowDataset {
    /// Scaled values `[T, N, C]` (model inputs).
    pub scaled: Tensor,
    /// Raw values `[T, N, C]` (targets and metric ground truth).
    pub raw: Tensor,
    /// The scaler fit on the training portion.
    pub scaler: StandardScaler,
    /// Input horizon H.
    pub h: usize,
    /// Forecast horizon F.
    pub f: usize,
    /// Target feature index (0 = speed / temperature).
    pub target_feature: usize,
    /// Chronological split over window starts.
    pub split: ChronoSplit,
}

impl WindowDataset {
    /// Builds a windowed dataset from a generated series with the paper's
    /// split fractions. The scaler is fit only on timestamps that belong to
    /// training windows.
    pub fn from_series(ds: &CorrelatedTimeSeries, h: usize, f: usize) -> Result<Self, DataError> {
        Self::from_values(&ds.values, h, f)
    }

    /// Builds a windowed dataset straight from a `[T, N, C]` value tensor,
    /// bypassing [`CorrelatedTimeSeries`] and its dense `[N, N]` distance
    /// matrix — the entry point for large-`N` series whose adjacency lives
    /// in sparse (CSR) form.
    pub fn from_values(values: &Tensor, h: usize, f: usize) -> Result<Self, DataError> {
        let t_total = values.shape()[0];
        if t_total <= h + f {
            return Err(DataError::SeriesTooShort { steps: t_total, h, f });
        }
        let num_windows = t_total - h - f + 1;
        let split = ChronoSplit::paper(num_windows);
        // Training windows cover timestamps [0, train_end + h); fit there.
        let fit_steps = split.train.end + h;
        let scaler = StandardScaler::fit(values, fit_steps)?;
        Ok(Self {
            scaled: scaler.transform(values)?,
            raw: values.clone(),
            scaler,
            h,
            f,
            target_feature: 0,
            split,
        })
    }

    /// Number of windows in total.
    pub fn num_windows(&self) -> usize {
        self.raw.shape()[0] - self.h - self.f + 1
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.raw.shape()[1]
    }

    /// Number of input features.
    pub fn num_features(&self) -> usize {
        self.raw.shape()[2]
    }

    /// The scaled input window starting at `start`: `[H, N, C]`.
    pub fn input_window(&self, start: usize) -> Tensor {
        self.scaled.slice_axis(0, start, start + self.h)
    }

    /// The **raw** target window following `start`: `[F, N]` of the target
    /// feature (metrics are computed in the original scale, §VI-A).
    pub fn target_window(&self, start: usize) -> Tensor {
        let y = self.raw.slice_axis(0, start + self.h, start + self.h + self.f);
        y.slice_axis(2, self.target_feature, self.target_feature + 1)
            .reshape(&[self.f, self.num_entities()])
    }

    /// The **scaled** target window `[F, N]` (for scheduled sampling, where
    /// ground truth is fed back into the decoder in model space).
    pub fn scaled_target_window(&self, start: usize) -> Tensor {
        let y = self.scaled.slice_axis(0, start + self.h, start + self.h + self.f);
        y.slice_axis(2, self.target_feature, self.target_feature + 1)
            .reshape(&[self.f, self.num_entities()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{generate_traffic, TrafficConfig};

    fn tiny_windows() -> WindowDataset {
        let ds = generate_traffic(&TrafficConfig::tiny(6, 2));
        WindowDataset::from_series(&ds, 12, 12).unwrap()
    }

    #[test]
    fn split_proportions() {
        let s = ChronoSplit::paper(100);
        assert_eq!(s.train, 0..70);
        assert_eq!(s.val, 70..80);
        assert_eq!(s.test, 80..100);
    }

    #[test]
    fn split_is_chronological_and_disjoint() {
        let s = ChronoSplit::paper(57);
        assert!(s.train.end <= s.val.start);
        assert!(s.val.end <= s.test.start);
        assert_eq!(s.test.end, 57);
    }

    #[test]
    fn window_count_matches_formula() {
        let w = tiny_windows();
        assert_eq!(w.num_windows(), 2 * 288 - 12 - 12 + 1);
    }

    #[test]
    fn window_shapes() {
        let w = tiny_windows();
        assert_eq!(w.input_window(0).shape(), &[12, 6, 1]);
        assert_eq!(w.target_window(0).shape(), &[12, 6]);
        assert_eq!(w.scaled_target_window(5).shape(), &[12, 6]);
    }

    #[test]
    fn target_follows_input_in_time() {
        let w = tiny_windows();
        // Raw target at offset 0 equals raw series at timestamp H.
        let target = w.target_window(0);
        assert_eq!(target.at(&[0, 3]), w.raw.at(&[12, 3, 0]));
        assert_eq!(target.at(&[11, 0]), w.raw.at(&[23, 0, 0]));
    }

    #[test]
    fn scaled_and_raw_targets_are_consistent() {
        let w = tiny_windows();
        let raw = w.target_window(3);
        let scaled = w.scaled_target_window(3);
        let back = w.scaler.inverse_feature(&scaled, 0);
        assert!(back.allclose(&raw, 1e-3));
    }

    #[test]
    fn scaler_sees_only_training_steps() {
        // Values in the test region should not influence the mean: verify by
        // constructing a series whose test tail is shifted by +1000.
        let ds = generate_traffic(&TrafficConfig::tiny(4, 2));
        let mut values = ds.values.clone();
        let t = values.shape()[0];
        let boost_from = (t as f32 * 0.9) as usize;
        for step in boost_from..t {
            for e in 0..4 {
                let v = values.at(&[step, e, 0]);
                values.set(&[step, e, 0], v + 1000.0);
            }
        }
        let shifted = CorrelatedTimeSeries { values, ..ds.clone() };
        let w_orig = WindowDataset::from_series(&ds, 12, 12).unwrap();
        let w_shift = WindowDataset::from_series(&shifted, 12, 12).unwrap();
        assert!((w_orig.scaler.mean(0) - w_shift.scaler.mean(0)).abs() < 1e-3);
    }

    #[test]
    fn from_series_rejects_short_series() {
        let ds = generate_traffic(&TrafficConfig::tiny(4, 2));
        let t = ds.num_steps();
        match WindowDataset::from_series(&ds, t, 12) {
            Err(crate::DataError::SeriesTooShort { steps, h, f }) => {
                assert_eq!(steps, t);
                assert_eq!(h, t);
                assert_eq!(f, 12);
            }
            other => panic!("expected SeriesTooShort, got {:?}", other.map(|_| ())),
        }
    }
}
