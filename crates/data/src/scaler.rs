//! Per-feature z-score scaling, fit on the training portion only (the
//! standard DCRNN / Graph WaveNet preprocessing).

use crate::error::DataError;
use enhancenet_tensor::Tensor;

/// Standard scaler over the feature axis of a `[T, N, C]` series.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl StandardScaler {
    /// Fits per-feature mean and standard deviation over the first
    /// `fit_steps` timestamps (the training split) of `values` `[T, N, C]`.
    pub fn fit(values: &Tensor, fit_steps: usize) -> Result<Self, DataError> {
        if values.rank() != 3 {
            return Err(DataError::RankMismatch {
                context: "scaler fit expects [T, N, C]",
                expected: 3,
                got: values.rank(),
            });
        }
        let (t, n, c) = (values.shape()[0], values.shape()[1], values.shape()[2]);
        let fit = fit_steps.min(t);
        if fit == 0 {
            return Err(DataError::EmptyFit);
        }
        let count = (fit * n) as f32;
        let mut mean = vec![0.0f32; c];
        let data = values.data();
        for step in 0..fit {
            for e in 0..n {
                let base = (step * n + e) * c;
                for (f, m) in mean.iter_mut().enumerate() {
                    *m += data[base + f];
                }
            }
        }
        for m in &mut mean {
            *m /= count;
        }
        let mut var = vec![0.0f32; c];
        for step in 0..fit {
            for e in 0..n {
                let base = (step * n + e) * c;
                for (f, v) in var.iter_mut().enumerate() {
                    let d = data[base + f] - mean[f];
                    *v += d * d;
                }
            }
        }
        let std = var.iter().map(|v| (v / count).sqrt().max(1e-6)).collect();
        Ok(Self { mean, std })
    }

    /// Scales a tensor whose **last axis** is the feature axis.
    pub fn transform(&self, values: &Tensor) -> Result<Tensor, DataError> {
        if values.rank() == 0 {
            return Err(DataError::RankMismatch {
                context: "scaler transform",
                expected: 1,
                got: 0,
            });
        }
        let c = *values.shape().last().expect("rank checked above");
        if c != self.mean.len() {
            return Err(DataError::FeatureMismatch { expected: self.mean.len(), got: c });
        }
        let mut out = values.clone();
        for (i, v) in out.data_mut().iter_mut().enumerate() {
            let f = i % c;
            *v = (*v - self.mean[f]) / self.std[f];
        }
        Ok(out)
    }

    /// Inverse-scales values of **feature `f` only** (predictions carry just
    /// the target feature).
    pub fn inverse_feature(&self, values: &Tensor, f: usize) -> Tensor {
        values.map(|v| v * self.std[f] + self.mean[f])
    }

    /// Mean of feature `f`.
    pub fn mean(&self, f: usize) -> f32 {
        self.mean[f]
    }

    /// Standard deviation of feature `f`.
    pub fn std(&self, f: usize) -> f32 {
        self.std[f]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tensor {
        // [T=4, N=1, C=2]: feature 0 = 0,2,4,6 ; feature 1 = 10,10,10,10
        Tensor::from_vec(vec![0.0, 10.0, 2.0, 10.0, 4.0, 10.0, 6.0, 10.0], &[4, 1, 2])
    }

    #[test]
    fn fit_computes_feature_stats() {
        let s = StandardScaler::fit(&sample(), 4).unwrap();
        assert!((s.mean(0) - 3.0).abs() < 1e-6);
        assert!((s.mean(1) - 10.0).abs() < 1e-6);
        let expected_std = (5.0f32).sqrt(); // var of 0,2,4,6 = 5
        assert!((s.std(0) - expected_std).abs() < 1e-5);
    }

    #[test]
    fn constant_feature_keeps_min_std() {
        let s = StandardScaler::fit(&sample(), 4).unwrap();
        assert!(s.std(1) >= 1e-6);
        let t = s.transform(&sample()).unwrap();
        assert!(!t.has_non_finite());
    }

    #[test]
    fn fit_uses_only_train_steps() {
        let s_all = StandardScaler::fit(&sample(), 4).unwrap();
        let s_half = StandardScaler::fit(&sample(), 2).unwrap();
        assert!((s_half.mean(0) - 1.0).abs() < 1e-6);
        assert!(s_half.mean(0) != s_all.mean(0));
    }

    #[test]
    fn fit_rejects_wrong_rank() {
        let flat = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        match StandardScaler::fit(&flat, 2) {
            Err(crate::DataError::RankMismatch { expected: 3, got: 1, .. }) => {}
            other => panic!("expected RankMismatch, got {other:?}"),
        }
    }

    #[test]
    fn fit_rejects_zero_fit_steps() {
        match StandardScaler::fit(&sample(), 0) {
            Err(crate::DataError::EmptyFit) => {}
            other => panic!("expected EmptyFit, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn transform_rejects_feature_mismatch() {
        let s = StandardScaler::fit(&sample(), 4).unwrap();
        let wrong = Tensor::zeros(&[4, 1, 3]);
        match s.transform(&wrong) {
            Err(crate::DataError::FeatureMismatch { expected: 2, got: 3 }) => {}
            other => panic!("expected FeatureMismatch, got {other:?}"),
        }
    }

    #[test]
    fn transform_then_inverse_roundtrips() {
        let s = StandardScaler::fit(&sample(), 4).unwrap();
        let t = s.transform(&sample()).unwrap();
        // Check the target feature roundtrip.
        let f0: Vec<f32> = (0..4).map(|i| t.at(&[i, 0, 0])).collect();
        let f0_tensor = Tensor::from_vec(f0, &[4]);
        let back = s.inverse_feature(&f0_tensor, 0);
        assert!(back.allclose(&Tensor::from_vec(vec![0.0, 2.0, 4.0, 6.0], &[4]), 1e-4));
    }

    #[test]
    fn transformed_train_data_is_standardized() {
        let s = StandardScaler::fit(&sample(), 4).unwrap();
        let t = s.transform(&sample()).unwrap();
        let f0: Vec<f32> = (0..4).map(|i| t.at(&[i, 0, 0])).collect();
        let mean: f32 = f0.iter().sum::<f32>() / 4.0;
        let var: f32 = f0.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-4);
    }
}
