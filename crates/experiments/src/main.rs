//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§VI).
//!
//! ```text
//! experiments <command> [--scale small|full] [--threads <k>] [--telemetry-out <path>] [--trace-out <path>] [--metrics-addr <host:port>]
//!
//! commands:
//!   table1   DFGN on RNN/TCN (3 datasets)
//!   table2   DFGN + DAMGN on GRNN/GTCN
//!   table3   baselines + state of the art + t-tests
//!   table4   sensitivity of the memory size m (D-TCN)
//!   table5   runtime (train s/epoch, predict ms)
//!   fig10    t-SNE of learned entity memories (also writes fig11 data)
//!   fig11    entity locations coloured by memory cluster
//!   fig12    learned adjacency matrices A/B/C_t
//!   ablation generator-conditioning + DAMGN-component ablations
//!   all      everything above in order
//!   sanity   quick forward-pass smoke test
//! ```
//!
//! `--scale small` (default) reproduces the tables' *shape* in minutes on a
//! CPU; `--scale full` uses the paper's entity counts and epoch budget.
//! Artifacts are written under `results/`.
//!
//! `--threads <k>` trains with the sharded data-parallel engine at `k`
//! worker shards (`TrainConfig::data_parallel`); results are bit-identical
//! for every `k`, so the flag only changes wall-clock time.
//!
//! `--telemetry-out <path>` enables the global telemetry registry for the
//! run, writes it as JSONL to `path` on completion, and prints the human
//! summary table to stderr. `scripts/bench_summary` converts the JSONL
//! into the `BENCH_*.json` perf-trajectory format CI archives per commit.
//!
//! `--trace-out <path>` also enables telemetry and additionally exports the
//! hierarchical spans as a Chrome `trace_event` JSON file loadable in
//! `chrome://tracing` / Perfetto. Both flags may be combined; each writes
//! its own file.
//!
//! `--metrics-addr <host:port>` additionally serves the live registry over
//! HTTP while the run executes — `/metrics` in Prometheus text exposition
//! plus `/healthz` and `/readyz` — so long runs can be scraped instead of
//! waiting for the post-hoc dump.

mod ablation;
mod common;
mod figures;
mod tables;

use common::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    let scale = match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some(v) => Scale::parse(v).unwrap_or_else(|| {
                eprintln!("error: unknown scale {v:?} (expected \"small\" or \"full\")");
                std::process::exit(2);
            }),
            None => {
                eprintln!("error: --scale requires a value (\"small\" or \"full\")");
                std::process::exit(2);
            }
        },
        None => Scale::Small,
    };
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(threads) if (1..=256).contains(&threads) => {
                // `Hyper::at` reads this when building every TrainConfig, so
                // one flag covers all commands without threading a parameter
                // through each table/figure entry point.
                std::env::set_var("ENHANCENET_THREADS", threads.to_string());
            }
            _ => {
                eprintln!("error: --threads requires a shard count in 1..=256");
                std::process::exit(2);
            }
        }
    }
    let telemetry_out: Option<std::path::PathBuf> =
        match args.iter().position(|a| a == "--telemetry-out") {
            Some(i) => match args.get(i + 1) {
                Some(path) => Some(std::path::PathBuf::from(path)),
                None => {
                    eprintln!("error: --telemetry-out requires a path");
                    std::process::exit(2);
                }
            },
            None => None,
        };
    let trace_out: Option<std::path::PathBuf> = match args.iter().position(|a| a == "--trace-out") {
        Some(i) => match args.get(i + 1) {
            Some(path) => Some(std::path::PathBuf::from(path)),
            None => {
                eprintln!("error: --trace-out requires a path");
                std::process::exit(2);
            }
        },
        None => None,
    };
    // `--metrics-addr <host:port>` serves the live registry over HTTP for
    // the duration of the run, so long table/ablation runs can be watched
    // with `curl .../metrics` instead of waiting for the JSONL dump. The
    // harness is always "ready" once the listener is up.
    let metrics_server = match args.iter().position(|a| a == "--metrics-addr") {
        Some(i) => match args.get(i + 1) {
            Some(addr) => {
                enhancenet_telemetry::set_enabled(true);
                let probe: enhancenet_telemetry::ReadyProbe = std::sync::Arc::new(|| true);
                match enhancenet_telemetry::MetricsServer::bind(addr.as_str(), probe) {
                    Ok(server) => {
                        eprintln!("[metrics at http://{}/metrics]", server.local_addr());
                        Some(server)
                    }
                    Err(e) => {
                        eprintln!("error: cannot bind --metrics-addr {addr}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            None => {
                eprintln!("error: --metrics-addr requires host:port");
                std::process::exit(2);
            }
        },
        None => None,
    };
    if telemetry_out.is_some() || trace_out.is_some() {
        enhancenet_telemetry::set_enabled(true);
    }

    let started = std::time::Instant::now();
    // Root span so the Chrome trace shows the whole run as one top-level
    // slice above the trainer/model spans (labels must be 'static).
    let run_span = enhancenet_telemetry::span(match command {
        "table1" => "experiments.table1",
        "table2" => "experiments.table2",
        "table3" => "experiments.table3",
        "table4" => "experiments.table4",
        "table5" => "experiments.table5",
        "fig10" | "fig11" => "experiments.fig10_fig11",
        "fig12" => "experiments.fig12",
        "sanity" => "experiments.sanity",
        "ablation" => "experiments.ablation",
        "all" => "experiments.all",
        _ => "experiments.run",
    });
    match command {
        "table1" => tables::table1(scale),
        "table2" => tables::table2(scale),
        "table3" => tables::table3(scale),
        "table4" => tables::table4(scale),
        "table5" => tables::table5(scale),
        "fig10" | "fig11" => figures::fig10_fig11(scale),
        "fig12" => figures::fig12(scale),
        "sanity" => figures::sanity_forward(scale),
        "ablation" => {
            ablation::ablation_conditioning(scale);
            ablation::ablation_damgn_components(scale);
        }
        "all" => {
            tables::table1(scale);
            tables::table2(scale);
            tables::table3(scale);
            tables::table4(scale);
            tables::table5(scale);
            figures::fig10_fig11(scale);
            figures::fig12(scale);
            ablation::ablation_conditioning(scale);
            ablation::ablation_damgn_components(scale);
        }
        _ => {
            eprintln!(
                "usage: experiments <table1|table2|table3|table4|table5|fig10|fig11|fig12|ablation|all|sanity> [--scale small|full] [--threads <k>] [--telemetry-out <path>] [--trace-out <path>] [--metrics-addr <host:port>]"
            );
            std::process::exit(2);
        }
    }
    drop(run_span);
    if let Some(path) = &telemetry_out {
        match enhancenet_telemetry::write_jsonl(path) {
            Ok(()) => eprintln!("[telemetry written to {}]", path.display()),
            Err(e) => {
                eprintln!("error: failed to write telemetry to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        eprint!("{}", enhancenet_telemetry::summary_table());
    }
    if let Some(path) = &trace_out {
        match enhancenet_telemetry::write_chrome_trace(path) {
            Ok(()) => eprintln!("[chrome trace written to {}]", path.display()),
            Err(e) => {
                eprintln!("error: failed to write trace to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(server) = metrics_server {
        server.shutdown();
    }
    eprintln!("[done in {:.1}s]", started.elapsed().as_secs_f32());
}
