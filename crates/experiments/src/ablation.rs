//! Ablation studies called out in DESIGN.md:
//!
//! 1. **Filter-generator conditioning** (§II "Filter Generation"): the paper
//!    conditions the generator on *learnable entity memories* rather than on
//!    the input data (as prior filter-generation work does) and points to
//!    Figures 10–11 as empirical justification. We make the comparison
//!    explicit on a common host: a per-entity linear autoregressor whose
//!    coefficients come from (a) one shared matrix, (b) a generator
//!    conditioned on the current input window, (c) a DFGN conditioned on
//!    memories, and (d) the "straightforward method" (stored per-entity
//!    coefficients).
//! 2. **DAMGN components** (Eq. 13): train DA-GTCN with λ-components frozen
//!    to isolate the contribution of the static adaptive `B` and the
//!    time-specific `C_t`: A only, A+B, A+C, A+B+C.

use crate::common::{dataset_la, save_json, Hyper, Scale};
use enhancenet::{Dfgn, DfgnConfig, Forecaster, ForwardCtx, Trainer};
use enhancenet_autodiff::{Graph, ParamId, ParamStore, Var};
use enhancenet_models::{GraphMode, ModelDims, TemporalMode, WaveNet, WaveNetConfig};
use enhancenet_nn::{Linear, Mlp};
use enhancenet_tensor::{Tensor, TensorRng};

/// How the linear-AR host obtains its coefficients.
enum ArWeights {
    /// One `[H, F]` matrix for all entities.
    Shared(ParamId),
    /// Generator MLP conditioned on the input window (prior art's choice).
    InputConditioned(Mlp),
    /// DFGN conditioned on learnable memories (the paper's choice).
    MemoryConditioned(Dfgn),
    /// Stored per-entity `[N, H, F]` coefficients (straightforward method).
    Straightforward(ParamId),
}

struct ArHost {
    store: ParamStore,
    weights: ArWeights,
    /// Bias head shared by all variants so the comparison is about the
    /// coefficient source only.
    head_bias: Linear,
    name: &'static str,
    h: usize,
    f: usize,
    n: usize,
}

impl ArHost {
    fn new(kind: &'static str, n: usize, h: usize, f: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = TensorRng::seed(seed);
        let weights = match kind {
            "shared" => ArWeights::Shared(store.add("coef", rng.xavier(&[h, f], h, f))),
            "input-conditioned" => ArWeights::InputConditioned(Mlp::new(
                &mut store,
                &mut rng,
                "gen",
                &[h, 16, 4, h * f],
                enhancenet_nn::mlp::Activation::Relu,
            )),
            "memory-conditioned" => ArWeights::MemoryConditioned(Dfgn::new(
                &mut store,
                &mut rng,
                "dfgn",
                n,
                h * f,
                DfgnConfig::default(),
            )),
            "straightforward" => {
                ArWeights::Straightforward(store.add("coef", rng.xavier(&[n, h, f], h, f)))
            }
            other => panic!("unknown AR variant {other}"),
        };
        let head_bias = Linear::new(&mut store, &mut rng, "bias", 1, 1, true);
        Self { store, weights, head_bias, name: kind, h, f, n }
    }
}

impl Forecaster for ArHost {
    fn name(&self) -> &str {
        self.name
    }
    fn store(&self) -> &ParamStore {
        &self.store
    }
    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }
    fn horizon(&self) -> usize {
        self.f
    }

    fn forward(&self, g: &mut Graph, x: &Tensor, _ctx: &mut ForwardCtx) -> Var {
        let (b, h, n) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let hist = x.slice_axis(3, 0, 1).reshape(&[b, h, n]).permute(&[0, 2, 1]); // [B,N,H]
        let hv = g.constant(hist);
        let y = match &self.weights {
            ArWeights::Shared(coef) => {
                let w = g.param(&self.store, *coef);
                g.matmul_broadcast_right(hv, w)
            }
            ArWeights::InputConditioned(gen) => {
                // Generate a [B·N, H, F] coefficient tensor from each
                // window, then apply it to that window.
                let flat = g.reshape(hv, &[b * n, h]);
                let gen_flat = gen.forward(g, &self.store, flat); // [B·N, H·F]
                let w = g.reshape(gen_flat, &[b * n, h, self.f]);
                let xin = g.reshape(hv, &[b * n, 1, h]);
                let out = g.bmm(xin, w); // [B·N, 1, F]
                g.reshape(out, &[b, n, self.f])
            }
            ArWeights::MemoryConditioned(dfgn) => {
                let generated = dfgn.generate(g, &self.store); // [N, H·F]
                let w = g.reshape(generated, &[self.n, self.h, self.f]);
                let xp = g.permute(hv, &[1, 0, 2]); // [N, B, H]
                let per_entity = g.bmm(xp, w); // [N, B, F]
                g.permute(per_entity, &[1, 0, 2])
            }
            ArWeights::Straightforward(coef) => {
                let w = g.param(&self.store, *coef); // [N, H, F]
                let xp = g.permute(hv, &[1, 0, 2]);
                let per_entity = g.bmm(xp, w);
                g.permute(per_entity, &[1, 0, 2])
            }
        };
        // Shared scalar bias (Linear on a dummy 1-feature input).
        let one = g.constant(Tensor::ones(&[1, 1]));
        let bias = self.head_bias.forward(g, &self.store, one); // [1,1]
        let flat_bias = g.reshape(bias, &[1]);
        let biased = g.add(y, flat_bias);
        g.permute(biased, &[0, 2, 1]) // [B, F, N]
    }
}

/// Ablation 1: generator conditioning (memories vs input vs alternatives).
pub fn ablation_conditioning(scale: Scale) {
    let hyper = Hyper::at(scale);
    let ds = dataset_la(scale);
    println!("\n=== Ablation: filter-generator conditioning (linear-AR host, LA) ===");
    println!("{:<20} {:>8} {:>8} {:>8} {:>10}", "variant", "MAE@3", "MAE@6", "MAE@12", "# Para");
    let mut rows = Vec::new();
    for kind in ["shared", "input-conditioned", "memory-conditioned", "straightforward"] {
        let mut model = ArHost::new(kind, ds.num_entities, 12, 12, 17);
        let trainer = Trainer::new(hyper.train_config("RNN", scale == Scale::Full));
        trainer.train(&mut model, &ds.windows);
        let eval =
            trainer.evaluate(&model, &ds.windows, ds.windows.split.test.clone(), &[3, 6, 12]);
        println!(
            "{:<20} {:>8.3} {:>8.3} {:>8.3} {:>10}",
            kind,
            eval.horizons[0].1.mae,
            eval.horizons[1].1.mae,
            eval.horizons[2].1.mae,
            model.num_parameters()
        );
        rows.push((
            kind.to_string(),
            eval.horizons.iter().map(|(h, m)| (*h, m.mae)).collect::<Vec<_>>(),
            model.num_parameters(),
        ));
    }
    save_json("ablation_conditioning", &rows);
}

/// Ablation 2: DAMGN components via frozen λ's on DA-GTCN.
pub fn ablation_damgn_components(scale: Scale) {
    let hyper = Hyper::at(scale);
    let ds = dataset_la(scale);
    println!("\n=== Ablation: DAMGN components (DA-GTCN, LA) ===");
    println!("{:<12} {:>8} {:>8} {:>8}", "adjacency", "MAE@3", "MAE@6", "MAE@12");
    let mut rows = Vec::new();
    for (label, use_b, use_c) in
        [("A", false, false), ("A+B", true, false), ("A+C", false, true), ("A+B+C", true, true)]
    {
        let dims = ModelDims {
            num_entities: ds.num_entities,
            in_features: ds.in_features,
            hidden: hyper.tcn_hidden,
            input_len: 12,
            output_len: 12,
        };
        let mut model = WaveNet::gtcn(
            dims,
            WaveNetConfig {
                dilations: hyper.dilations.clone(),
                kernel: 2,
                end_hidden: 64,
                dropout: 0.3,
            },
            TemporalMode::Shared,
            GraphMode::paper_dynamic(),
            &ds.adjacency,
            23,
        );
        {
            let (_, lb, lc) = model.damgn().expect("DA model").lambda_ids();
            let store = model.store_mut();
            if !use_b {
                *store.value_mut(lb) = Tensor::scalar(0.0);
                store.freeze(lb);
            }
            if !use_c {
                *store.value_mut(lc) = Tensor::scalar(0.0);
                store.freeze(lc);
            }
        }
        let trainer = Trainer::new(hyper.train_config("DA-GTCN", scale == Scale::Full));
        trainer.train(&mut model, &ds.windows);
        let eval =
            trainer.evaluate(&model, &ds.windows, ds.windows.split.test.clone(), &[3, 6, 12]);
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>8.3}",
            label, eval.horizons[0].1.mae, eval.horizons[1].1.mae, eval.horizons[2].1.mae
        );
        rows.push((
            label.to_string(),
            eval.horizons.iter().map(|(h, m)| (*h, m.mae)).collect::<Vec<_>>(),
        ));
    }
    save_json("ablation_damgn", &rows);
}
