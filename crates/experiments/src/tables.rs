//! Tables I–V of the paper's evaluation.

use crate::common::{
    all_datasets, dataset_la, print_table, run_model, save_json, Hyper, RunResult, Scale,
};
use enhancenet::DfgnConfig;

/// Table I — effect of DFGN on RNN and TCN, all three datasets.
pub fn table1(scale: Scale) {
    let hyper = Hyper::at(scale);
    let datasets = all_datasets(scale);
    let mut results = Vec::new();
    for ds in &datasets {
        for kind in ["RNN", "D-RNN", "TCN", "D-TCN"] {
            eprintln!("[table1] {kind} on {} ...", ds.name);
            results.push(run_model(&hyper, kind, ds, scale == Scale::Full));
        }
    }
    print_table("Table I: Effect of DFGN on capturing distinct temporal dynamics", &results);
    save_json("table1", &results);
}

/// Table II — effect of DFGN and DAMGN on GRNN and GTCN.
pub fn table2(scale: Scale) {
    let hyper = Hyper::at(scale);
    let datasets = all_datasets(scale);
    let mut results = Vec::new();
    for ds in &datasets {
        for kind in
            ["GRNN", "D-GRNN", "DA-GRNN", "D-DA-GRNN", "GTCN", "D-GTCN", "DA-GTCN", "D-DA-GTCN"]
        {
            eprintln!("[table2] {kind} on {} ...", ds.name);
            results.push(run_model(&hyper, kind, ds, scale == Scale::Full));
        }
    }
    print_table(
        "Table II: Effect of DFGN and DAMGN on temporal dynamics and entity correlations",
        &results,
    );
    save_json("table2", &results);
}

/// Table III — comparison with baselines and the state of the art,
/// including the §VI-B3 t-tests (p < 0.01 claimed by the paper).
pub fn table3(scale: Scale) {
    let hyper = Hyper::at(scale);
    let datasets = all_datasets(scale);
    let mut results = Vec::new();
    for ds in &datasets {
        for kind in [
            "ARIMA",
            "LSTM",
            "WaveNet",
            "DCRNN",
            "STGCN",
            "Graph WaveNet",
            "D-DA-GRNN",
            "D-DA-GTCN",
        ] {
            eprintln!("[table3] {kind} on {} ...", ds.name);
            results.push(run_model(&hyper, kind, ds, scale == Scale::Full));
        }
    }
    print_table("Table III: Comparison with baselines and state-of-the-art methods", &results);

    // §VI-B3: t-tests of the proposed models against DCRNN / Graph WaveNet,
    // over per-window MAE samples.
    println!("\n-- t-tests (Welch, two-sided) --");
    let mut ttests = Vec::new();
    for ds_name in ["EB", "LA", "US"] {
        let find = |model: &str| -> Option<&RunResult> {
            results.iter().find(|r| r.model == model && r.dataset == ds_name)
        };
        for ours in ["D-DA-GRNN", "D-DA-GTCN"] {
            for sota in ["DCRNN", "Graph WaveNet"] {
                if let (Some(a), Some(b)) = (find(ours), find(sota)) {
                    if a.window_mae.len() >= 2 && b.window_mae.len() >= 2 {
                        let t = enhancenet_stats::welch_t_test(&a.window_mae, &b.window_mae);
                        println!(
                            "{ds_name}: {ours} vs {sota}: t = {:+.3}, p = {:.4}{}",
                            t.t,
                            t.p_value,
                            if t.p_value < 0.01 { "  (significant, p < 0.01)" } else { "" }
                        );
                        ttests.push((
                            ds_name.to_string(),
                            ours.to_string(),
                            sota.to_string(),
                            t.t,
                            t.p_value,
                        ));
                    }
                }
            }
        }
    }
    save_json("table3", &results);
    save_json("table3_ttests", &ttests);
}

/// Table IV — sensitivity of the memory size `m` (8/16/18/32) for D-TCN on
/// the LA analogue; average MAE/MAPE/RMSE over all horizons.
pub fn table4(scale: Scale) {
    let hyper = Hyper::at(scale);
    let ds = dataset_la(scale);
    println!("\n=== Table IV: Sensitivity of m (D-TCN, LA) ===");
    println!("{:>4} {:>8} {:>8} {:>8}", "m", "MAE", "MAPE", "RMSE");
    let mut rows = Vec::new();
    for m in [8usize, 16, 18, 32] {
        let dfgn = DfgnConfig { memory_dim: m, ..DfgnConfig::default() };
        let dims = enhancenet_models::ModelDims {
            num_entities: ds.num_entities,
            in_features: ds.in_features,
            hidden: hyper.dtcn_hidden,
            input_len: 12,
            output_len: 12,
        };
        let mut model = enhancenet_models::WaveNet::tcn(
            dims,
            enhancenet_models::WaveNetConfig {
                dilations: hyper.dilations.clone(),
                kernel: 2,
                end_hidden: 64,
                dropout: 0.3,
            },
            enhancenet_models::TemporalMode::Distinct(dfgn),
            42,
        );
        eprintln!("[table4] m = {m} ...");
        let trainer = enhancenet::Trainer::new(hyper.train_config("D-TCN", scale == Scale::Full));
        trainer.train(&mut model, &ds.windows);
        let eval =
            trainer.evaluate(&model, &ds.windows, ds.windows.split.test.clone(), &[3, 6, 12]);
        println!(
            "{:>4} {:>8.3} {:>8.2} {:>8.3}",
            m, eval.overall.mae, eval.overall.mape, eval.overall.rmse
        );
        rows.push((m, eval.overall.mae, eval.overall.mape, eval.overall.rmse));
    }
    save_json("table4", &rows);
}

/// Table V — runtime: training seconds/epoch and prediction milliseconds
/// for the ten models of Tables I–II, on the LA analogue.
pub fn table5(scale: Scale) {
    let hyper = Hyper::at(scale);
    let ds = dataset_la(scale);
    println!("\n=== Table V: Runtime (LA) ===");
    println!("{:<14} {:>10} {:>10}", "Model", "T (s)", "P (ms)");
    let mut rows = Vec::new();
    for kind in [
        "RNN",
        "D-RNN",
        "TCN",
        "D-TCN",
        "GRNN",
        "D-GRNN",
        "DA-GRNN",
        "D-DA-GRNN",
        "GTCN",
        "D-GTCN",
        "DA-GTCN",
        "D-DA-GTCN",
    ] {
        eprintln!("[table5] {kind} ...");
        // Two timed epochs are enough for the runtime table.
        let mut quick = Hyper::at(scale);
        quick.epochs = 2;
        let r = run_model(&quick, kind, &ds, scale == Scale::Full);
        println!("{:<14} {:>10.2} {:>10.2}", kind, r.secs_per_epoch, r.pred_ms);
        rows.push((kind.to_string(), r.secs_per_epoch, r.pred_ms));
    }
    save_json("table5", &rows);
    let _ = hyper; // table uses its own quick hyper
}
