//! Shared experiment machinery: dataset preparation, the model factory,
//! training/evaluation drivers, table printing and JSON artifacts.

use enhancenet::{
    DfgnConfig, EvalReport, Forecaster, ProbeConfig, TrainConfig, TrainReport, Trainer,
};
use enhancenet_arima::ArimaConfig;
use enhancenet_data::traffic::{generate_traffic, TrafficConfig};
use enhancenet_data::weather::{generate_weather, WeatherConfig};
use enhancenet_data::WindowDataset;
use enhancenet_graph::{gaussian_kernel_adjacency, AdjacencyConfig};
use enhancenet_models::{
    ArimaBaseline, GraphMode, GruSeq2Seq, LstmSeq2Seq, ModelDims, Stgcn, TemporalMode, WaveNet,
    WaveNetConfig,
};
use enhancenet_nn::optim::LrSchedule;
use enhancenet_tensor::Tensor;
use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Experiment scale: `Small` regenerates the tables' *shape* on a laptop;
/// `Full` uses the paper's entity counts, spans and epoch budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced N / days / epochs (minutes of CPU time).
    Small,
    /// Paper-scale configuration (hours to days of CPU time).
    Full,
}

impl Scale {
    /// Parses `--scale small|full` style values.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// One prepared dataset: windows + the distance-derived adjacency `A`.
pub struct Dataset {
    /// `"EB"`, `"LA"` or `"US"`.
    pub name: &'static str,
    /// Windowed, scaled data with the 70/10/20 split.
    pub windows: WindowDataset,
    /// Gaussian-kernel adjacency (§VI-A).
    pub adjacency: Tensor,
    /// Entity coordinates (Figure 11).
    pub coords: Tensor,
    /// Entity count.
    pub num_entities: usize,
    /// Input attribute count.
    pub in_features: usize,
}

fn build_dataset(name: &'static str, values: enhancenet_data::CorrelatedTimeSeries) -> Dataset {
    let adjacency = gaussian_kernel_adjacency(&values.distances, AdjacencyConfig::default());
    let windows = WindowDataset::from_series(&values, 12, 12).expect("dataset windowing failed");
    Dataset {
        name,
        num_entities: values.num_entities(),
        in_features: values.num_features(),
        coords: values.coords.clone(),
        adjacency,
        windows,
    }
}

/// The EB analogue at the requested scale.
pub fn dataset_eb(scale: Scale) -> Dataset {
    let cfg = match scale {
        Scale::Small => TrafficConfig { num_sensors: 24, num_days: 8, ..TrafficConfig::eb() },
        Scale::Full => TrafficConfig::eb(),
    };
    build_dataset("EB", generate_traffic(&cfg))
}

/// The LA analogue at the requested scale.
pub fn dataset_la(scale: Scale) -> Dataset {
    let cfg = match scale {
        Scale::Small => TrafficConfig { num_sensors: 30, num_days: 8, ..TrafficConfig::la() },
        Scale::Full => TrafficConfig::la(),
    };
    build_dataset("LA", generate_traffic(&cfg))
}

/// The US analogue at the requested scale.
pub fn dataset_us(scale: Scale) -> Dataset {
    let cfg = match scale {
        Scale::Small => WeatherConfig { num_stations: 16, num_days: 40, ..WeatherConfig::us() },
        Scale::Full => WeatherConfig::us(),
    };
    build_dataset("US", generate_weather(&cfg))
}

/// All three datasets.
pub fn all_datasets(scale: Scale) -> Vec<Dataset> {
    vec![dataset_eb(scale), dataset_la(scale), dataset_us(scale)]
}

/// Model hyper-parameters at a scale (§VI-A "Model Configurations").
pub struct Hyper {
    /// RNN-family hidden width (paper: 64).
    pub rnn_hidden: usize,
    /// Hidden width of the DFGN-enhanced RNN variants (paper: 16 — "for
    /// D-RNN, we use C' = 16, which is already more accurate").
    pub drnn_hidden: usize,
    /// TCN-family channel count (paper: 32).
    pub tcn_hidden: usize,
    /// Channel count of DFGN-enhanced TCN variants.
    pub dtcn_hidden: usize,
    /// GRU layers (paper: 2).
    pub rnn_layers: usize,
    /// WaveNet dilations (paper: 1,2,1,2,1,2,1,2).
    pub dilations: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Cap on train batches per epoch (`None` = whole split).
    pub max_batches: Option<usize>,
    /// Cap on eval batches.
    pub max_eval_batches: Option<usize>,
    /// Data-parallel shard count for the trainer (`--threads`); `None`
    /// keeps the serial reference path.
    pub threads: Option<usize>,
}

impl Hyper {
    /// Hyper-parameters for `scale`. The epoch budget can be overridden
    /// with the `ENHANCENET_EPOCHS` environment variable (useful for CI
    /// smoke runs and time-boxed reproduction), and the trainer's
    /// data-parallel shard count with `ENHANCENET_THREADS` (set by the
    /// `--threads` CLI flag).
    pub fn at(scale: Scale) -> Self {
        let mut hyper = Self::at_inner(scale);
        if let Some(epochs) = std::env::var("ENHANCENET_EPOCHS").ok().and_then(|v| v.parse().ok()) {
            hyper.epochs = epochs;
        }
        if let Some(threads) = std::env::var("ENHANCENET_THREADS").ok().and_then(|v| v.parse().ok())
        {
            hyper.threads = Some(threads);
        }
        hyper
    }

    fn at_inner(scale: Scale) -> Self {
        match scale {
            Scale::Small => Hyper {
                rnn_hidden: 32,
                drnn_hidden: 12,
                tcn_hidden: 24,
                dtcn_hidden: 10,
                rnn_layers: 2,
                dilations: vec![1, 2, 1, 2, 1, 2, 1, 2],
                epochs: 8,
                batch: 8,
                max_batches: Some(30),
                max_eval_batches: Some(12),
                threads: None,
            },
            Scale::Full => Hyper {
                rnn_hidden: 64,
                drnn_hidden: 16,
                tcn_hidden: 32,
                dtcn_hidden: 16,
                rnn_layers: 2,
                dilations: vec![1, 2, 1, 2, 1, 2, 1, 2],
                epochs: 100,
                batch: 64,
                max_batches: None,
                max_eval_batches: None,
                threads: None,
            },
        }
    }

    fn dfgn(&self) -> DfgnConfig {
        DfgnConfig::default() // m = 16, n1 = 16, n2 = 4 (paper §VI-A)
    }

    fn wavenet_config(&self) -> WaveNetConfig {
        WaveNetConfig { dilations: self.dilations.clone(), kernel: 2, end_hidden: 64, dropout: 0.3 }
    }

    fn dims(&self, ds: &Dataset, hidden: usize) -> ModelDims {
        ModelDims {
            num_entities: ds.num_entities,
            in_features: ds.in_features,
            hidden,
            input_len: 12,
            output_len: 12,
        }
    }

    /// Instantiates a model by its paper name.
    pub fn make_model(&self, kind: &str, ds: &Dataset, seed: u64) -> Box<dyn Forecaster> {
        let dfgn = self.dfgn();
        let a = &ds.adjacency;
        match kind {
            "RNN" => Box::new(GruSeq2Seq::rnn(
                self.dims(ds, self.rnn_hidden),
                self.rnn_layers,
                TemporalMode::Shared,
                seed,
            )),
            "D-RNN" => Box::new(GruSeq2Seq::rnn(
                self.dims(ds, self.drnn_hidden),
                self.rnn_layers,
                TemporalMode::Distinct(dfgn),
                seed,
            )),
            "GRNN" | "DCRNN" => Box::new(GruSeq2Seq::grnn(
                self.dims(ds, self.rnn_hidden),
                self.rnn_layers,
                TemporalMode::Shared,
                GraphMode::paper_static(),
                a,
                seed,
            )),
            "D-GRNN" => Box::new(GruSeq2Seq::grnn(
                self.dims(ds, self.drnn_hidden),
                self.rnn_layers,
                TemporalMode::Distinct(dfgn),
                GraphMode::paper_static(),
                a,
                seed,
            )),
            "DA-GRNN" => Box::new(GruSeq2Seq::grnn(
                self.dims(ds, self.rnn_hidden),
                self.rnn_layers,
                TemporalMode::Shared,
                GraphMode::paper_dynamic(),
                a,
                seed,
            )),
            "D-DA-GRNN" => Box::new(GruSeq2Seq::grnn(
                self.dims(ds, self.drnn_hidden),
                self.rnn_layers,
                TemporalMode::Distinct(dfgn),
                GraphMode::paper_dynamic(),
                a,
                seed,
            )),
            "TCN" | "WaveNet" => Box::new(WaveNet::tcn(
                self.dims(ds, self.tcn_hidden),
                self.wavenet_config(),
                TemporalMode::Shared,
                seed,
            )),
            "D-TCN" => Box::new(WaveNet::tcn(
                self.dims(ds, self.dtcn_hidden),
                self.wavenet_config(),
                TemporalMode::Distinct(dfgn),
                seed,
            )),
            "GTCN" => Box::new(WaveNet::gtcn(
                self.dims(ds, self.tcn_hidden),
                self.wavenet_config(),
                TemporalMode::Shared,
                GraphMode::paper_static(),
                a,
                seed,
            )),
            "D-GTCN" => Box::new(WaveNet::gtcn(
                self.dims(ds, self.dtcn_hidden),
                self.wavenet_config(),
                TemporalMode::Distinct(dfgn),
                GraphMode::paper_static(),
                a,
                seed,
            )),
            "DA-GTCN" => Box::new(WaveNet::gtcn(
                self.dims(ds, self.tcn_hidden),
                self.wavenet_config(),
                TemporalMode::Shared,
                GraphMode::paper_dynamic(),
                a,
                seed,
            )),
            "D-DA-GTCN" => Box::new(WaveNet::gtcn(
                self.dims(ds, self.dtcn_hidden),
                self.wavenet_config(),
                TemporalMode::Distinct(dfgn),
                GraphMode::paper_dynamic(),
                a,
                seed,
            )),
            "Graph WaveNet" => Box::new(WaveNet::gtcn(
                self.dims(ds, self.tcn_hidden),
                self.wavenet_config(),
                TemporalMode::Shared,
                GraphMode::AdaptiveStatic {
                    kind: enhancenet_graph::SupportKind::DoubleTransition,
                    k_hops: 2,
                    embed_dim: 10,
                },
                a,
                seed,
            )),
            "STGCN" => Box::new(Stgcn::new(self.dims(ds, self.tcn_hidden), 2, a, seed)),
            "LSTM" => {
                Box::new(LstmSeq2Seq::new(self.dims(ds, self.rnn_hidden), self.rnn_layers, seed))
            }
            "ARIMA" => Box::new(ArimaBaseline::fit(
                self.dims(ds, 0),
                ArimaConfig::paper_default(),
                &ds.windows,
            )),
            other => panic!("unknown model kind {other:?}"),
        }
    }

    /// The training configuration for a model family at this scale
    /// (paper schedules at full scale).
    pub fn train_config(&self, kind: &str, full_scale: bool) -> TrainConfig {
        let is_rnn_family = matches!(
            kind,
            "RNN" | "D-RNN" | "GRNN" | "DCRNN" | "D-GRNN" | "DA-GRNN" | "D-DA-GRNN" | "LSTM"
        );
        let schedule = if full_scale {
            if is_rnn_family {
                LrSchedule::paper_rnn()
            } else {
                LrSchedule::paper_tcn()
            }
        } else if is_rnn_family {
            LrSchedule::Constant(0.01)
        } else {
            LrSchedule::Constant(0.005)
        };
        TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch,
            schedule,
            clip_norm: 5.0,
            sampler_tau: if full_scale { 2000.0 } else { 60.0 },
            max_batches_per_epoch: self.max_batches,
            max_eval_batches: self.max_eval_batches,
            patience: None,
            seed: 1,
            verbose: false,
            probes: ProbeConfig::default(),
            data_parallel: self.threads,
        }
    }
}

/// One table row (model × dataset) with everything the paper reports.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// Model tag.
    pub model: String,
    /// Dataset tag.
    pub dataset: String,
    /// (horizon, mae, rmse, mape) triples at 3/6/12.
    pub horizons: Vec<(usize, f32, f32, f32)>,
    /// Metrics averaged over all 12 horizons.
    pub overall: (f32, f32, f32),
    /// Trainable parameters.
    pub num_parameters: usize,
    /// Seconds per training epoch (Table V).
    pub secs_per_epoch: f32,
    /// Milliseconds per 12-step prediction (Table V).
    pub pred_ms: f32,
    /// Per-window MAE samples for significance testing.
    #[serde(skip_serializing)]
    pub window_mae: Vec<f32>,
}

/// Trains + evaluates one model on one dataset.
pub fn run_model(hyper: &Hyper, kind: &str, ds: &Dataset, full_scale: bool) -> RunResult {
    let mut model = hyper.make_model(kind, ds, 42);
    let trainer = Trainer::new(hyper.train_config(kind, full_scale));
    let report: TrainReport = if kind == "ARIMA" {
        // ARIMA was already fit in the constructor; skip gradient training.
        TrainReport {
            train_loss: vec![],
            val_mae: vec![],
            best_epoch: 0,
            secs_per_epoch: 0.0,
            num_parameters: 0,
            epoch_telemetry: vec![],
        }
    } else {
        trainer.train(model.as_mut(), &ds.windows)
    };
    let eval: EvalReport =
        trainer.evaluate(model.as_ref(), &ds.windows, ds.windows.split.test.clone(), &[3, 6, 12]);
    RunResult {
        model: kind.to_string(),
        dataset: ds.name.to_string(),
        horizons: eval.horizons.iter().map(|(h, m)| (*h, m.mae, m.rmse, m.mape)).collect(),
        overall: (eval.overall.mae, eval.overall.rmse, eval.overall.mape),
        num_parameters: report.num_parameters,
        secs_per_epoch: report.secs_per_epoch,
        pred_ms: eval.pred_ms,
        window_mae: eval.window_mae,
    }
}

/// Prints a paper-style table: one block per dataset, one row per model,
/// MAE/RMSE/MAPE at horizons 3/6/12 plus the parameter count.
pub fn print_table(title: &str, results: &[RunResult]) {
    println!("\n=== {title} ===");
    let mut datasets: Vec<&str> = results.iter().map(|r| r.dataset.as_str()).collect();
    datasets.dedup();
    for ds in datasets {
        println!("\n-- data set {ds} --");
        println!(
            "{:<14} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>9}",
            "Model",
            "MAE@3",
            "RMSE@3",
            "MAPE@3",
            "MAE@6",
            "RMSE@6",
            "MAPE@6",
            "MAE@12",
            "RMSE@12",
            "MAPE@12",
            "# Para"
        );
        for r in results.iter().filter(|r| r.dataset == ds) {
            let h = |i: usize| r.horizons.get(i).copied().unwrap_or((0, 0.0, 0.0, 0.0));
            let (_, m3, r3, p3) = h(0);
            let (_, m6, r6, p6) = h(1);
            let (_, m12, r12, p12) = h(2);
            println!(
                "{:<14} {:>8.3} {:>8.3} {:>8.2} | {:>8.3} {:>8.3} {:>8.2} | {:>8.3} {:>8.3} {:>8.2} | {:>9}",
                r.model, m3, r3, p3, m6, r6, p6, m12, r12, p12, r.num_parameters
            );
        }
    }
}

/// Writes results as JSON under `results/`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    fs::write(&path, serde_json::to_string_pretty(value).expect("serialize"))
        .expect("write results");
    println!("[saved {}]", path.display());
}

/// Writes a CSV file under `results/`.
pub fn save_csv(name: &str, header: &str, rows: &[String]) {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.csv"));
    let mut body = String::from(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    fs::write(&path, body).expect("write csv");
    println!("[saved {}]", path.display());
}
