//! Figures 10–12 of the paper's evaluation.

#![allow(clippy::needless_range_loop)] // index loops mirror the matrix math

use crate::common::{dataset_la, save_csv, Hyper, Scale};
use enhancenet::{Forecaster, ForwardCtx, Trainer};
use enhancenet_autodiff::Graph;
use enhancenet_models::{GraphMode, ModelDims, TemporalMode, WaveNet, WaveNetConfig};
use enhancenet_stats::{kmeans, tsne, TsneConfig};
use enhancenet_tensor::{Tensor, TensorRng};

/// Trains a D-TCN on the LA analogue and returns (model, dataset).
fn trained_dtcn(scale: Scale) -> (WaveNet, crate::common::Dataset) {
    let hyper = Hyper::at(scale);
    let ds = dataset_la(scale);
    let dims = ModelDims {
        num_entities: ds.num_entities,
        in_features: ds.in_features,
        hidden: hyper.dtcn_hidden,
        input_len: 12,
        output_len: 12,
    };
    let mut model = WaveNet::tcn(
        dims,
        WaveNetConfig::default(),
        TemporalMode::Distinct(enhancenet::DfgnConfig::default()),
        42,
    );
    let trainer = Trainer::new(hyper.train_config("D-TCN", scale == Scale::Full));
    eprintln!("[fig10/11] training D-TCN on LA ...");
    trainer.train(&mut model, &ds.windows);
    (model, ds)
}

/// Figures 10 and 11 — t-SNE of the learned entity memories (D-TCN, LA),
/// k-means cluster colouring, and the entity locations with the same
/// colours. Emits `results/fig10_memories.csv` and
/// `results/fig11_locations.csv`, plus an ASCII scatter of the embedding.
pub fn fig10_fig11(scale: Scale) {
    let (model, ds) = trained_dtcn(scale);
    let memory_id = model.memory_id().expect("D-TCN has memories");
    let memories = model.store().value(memory_id).clone(); // [N, m]

    let embedding = tsne(
        &memories,
        TsneConfig {
            perplexity: (ds.num_entities as f32 / 6.0).clamp(4.0, 30.0),
            ..TsneConfig::default()
        },
    );
    let (clusters, _) = kmeans(&memories, 4, 7, 100);

    let rows10: Vec<String> = (0..ds.num_entities)
        .map(|i| {
            format!("{i},{:.4},{:.4},{}", embedding.at(&[i, 0]), embedding.at(&[i, 1]), clusters[i])
        })
        .collect();
    save_csv("fig10_memories", "entity,tsne_x,tsne_y,cluster", &rows10);

    let rows11: Vec<String> = (0..ds.num_entities)
        .map(|i| {
            format!("{i},{:.4},{:.4},{}", ds.coords.at(&[i, 0]), ds.coords.at(&[i, 1]), clusters[i])
        })
        .collect();
    save_csv("fig11_locations", "entity,x_km,y_km,cluster", &rows11);

    println!("\n=== Figure 10: entity memories (t-SNE of D-TCN memories, LA) ===");
    ascii_scatter(&embedding, &clusters);
    println!("\n=== Figure 11: entity locations coloured by memory cluster ===");
    ascii_scatter(&ds.coords, &clusters);

    // Quantitative check of the paper's qualitative claim: memories of
    // same-cluster sensors are closer than across clusters.
    let (within, between) = cluster_separation(&memories, &clusters);
    println!(
        "\nmemory-space distances: within-cluster {within:.3}, between-cluster {between:.3} \
         (ratio {:.2})",
        between / within.max(1e-6)
    );
}

/// Mean pairwise distance within vs between clusters.
fn cluster_separation(points: &Tensor, clusters: &[usize]) -> (f32, f32) {
    let n = points.shape()[0];
    let d = points.shape()[1];
    let dist = |a: usize, b: usize| -> f32 {
        (0..d).map(|k| (points.at(&[a, k]) - points.at(&[b, k])).powi(2)).sum::<f32>().sqrt()
    };
    let (mut win, mut wc, mut bet, mut bc) = (0.0f32, 0usize, 0.0f32, 0usize);
    for a in 0..n {
        for b in (a + 1)..n {
            if clusters[a] == clusters[b] {
                win += dist(a, b);
                wc += 1;
            } else {
                bet += dist(a, b);
                bc += 1;
            }
        }
    }
    (win / wc.max(1) as f32, bet / bc.max(1) as f32)
}

/// Renders points as a coarse ASCII scatter, digits = cluster ids.
fn ascii_scatter(points: &Tensor, clusters: &[usize]) {
    let n = points.shape()[0];
    let (w, h) = (64usize, 20usize);
    let (mut min_x, mut max_x) = (f32::INFINITY, f32::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f32::INFINITY, f32::NEG_INFINITY);
    for i in 0..n {
        min_x = min_x.min(points.at(&[i, 0]));
        max_x = max_x.max(points.at(&[i, 0]));
        min_y = min_y.min(points.at(&[i, 1]));
        max_y = max_y.max(points.at(&[i, 1]));
    }
    let sx = (max_x - min_x).max(1e-6);
    let sy = (max_y - min_y).max(1e-6);
    let mut grid = vec![vec![' '; w]; h];
    for i in 0..n {
        let gx = (((points.at(&[i, 0]) - min_x) / sx) * (w - 1) as f32) as usize;
        let gy = (((points.at(&[i, 1]) - min_y) / sy) * (h - 1) as f32) as usize;
        grid[h - 1 - gy][gx] = char::from_digit(clusters[i] as u32 % 10, 10).unwrap_or('?');
    }
    for row in grid {
        println!("|{}|", row.iter().collect::<String>());
    }
}

/// Figure 12 — learned adjacency matrices of DA-GTCN on LA: the distance
/// `A`, the learned static `B`, and the dynamic `C_t` at two timestamps,
/// for the first 20 sensors. Emits CSVs and ASCII heatmaps.
pub fn fig12(scale: Scale) {
    let hyper = Hyper::at(scale);
    let ds = dataset_la(scale);
    let dims = ModelDims {
        num_entities: ds.num_entities,
        in_features: ds.in_features,
        hidden: hyper.tcn_hidden,
        input_len: 12,
        output_len: 12,
    };
    let mut model = WaveNet::gtcn(
        dims,
        WaveNetConfig::default(),
        TemporalMode::Shared,
        GraphMode::paper_dynamic(),
        &ds.adjacency,
        42,
    );
    let trainer = Trainer::new(hyper.train_config("DA-GTCN", scale == Scale::Full));
    eprintln!("[fig12] training DA-GTCN on LA ...");
    trainer.train(&mut model, &ds.windows);

    let damgn = model.damgn().expect("DA model has a DAMGN");
    let k = ds.num_entities.min(20);

    // Static A and learned B.
    let mut g = Graph::new();
    let b_var = damgn.static_b(&mut g, model.store());
    let b = g.value(b_var).clone();

    // Dynamic C at two different times of day: pick a morning-peak window
    // and an evening window from the test split.
    let spd = 288; // steps/day at 5-minute sampling
    let base = ds.windows.split.test.start;
    let morning = align_to_hour(base, spd, 8);
    let evening = align_to_hour(base, spd, 18);
    let c_at = |start: usize| -> Tensor {
        let x = ds.windows.input_window(start).unsqueeze(0); // [1, H, N, C]
        let sig = x.slice_axis(3, 0, 1).index_axis(0, 0).index_axis(0, 11).reshape(&[
            1,
            ds.num_entities,
            1,
        ]);
        let mut g = Graph::new();
        let sig_var = g.constant(sig);
        let c_var = damgn.dynamic_c(&mut g, model.store(), sig_var);
        g.value(c_var).index_axis(0, 0)
    };
    let c1 = c_at(morning);
    let c2 = c_at(evening);

    for (name, m) in
        [("fig12_A", &ds.adjacency), ("fig12_B", &b), ("fig12_C_t1", &c1), ("fig12_C_t2", &c2)]
    {
        let rows: Vec<String> = (0..k)
            .map(|i| (0..k).map(|j| format!("{:.4}", m.at(&[i, j]))).collect::<Vec<_>>().join(","))
            .collect();
        save_csv(name, &header(k), &rows);
    }

    println!("\n=== Figure 12: learned adjacency matrices (DA-GTCN, LA, first {k} sensors) ===");
    for (title, m) in [
        ("A (distance-based, static)", &ds.adjacency),
        ("B (learned static adaptive)", &b),
        ("C @ morning peak", &c1),
        ("C @ evening peak", &c2),
    ] {
        println!("\n{title}:");
        ascii_heatmap(m, k);
    }
    let diff = submatrix_l1(&c1, &c2, k);
    println!("\n|C_morning − C_evening|₁ over the first {k} sensors = {diff:.3} (dynamic ⇔ > 0)");
}

fn align_to_hour(base: usize, steps_per_day: usize, hour: usize) -> usize {
    let offset = (steps_per_day + hour * steps_per_day / 24).saturating_sub(base % steps_per_day);
    base + offset
}

fn header(k: usize) -> String {
    (0..k).map(|j| format!("s{j}")).collect::<Vec<_>>().join(",")
}

fn submatrix_l1(a: &Tensor, b: &Tensor, k: usize) -> f32 {
    let mut s = 0.0;
    for i in 0..k {
        for j in 0..k {
            s += (a.at(&[i, j]) - b.at(&[i, j])).abs();
        }
    }
    s
}

/// Coarse ASCII heatmap of the leading `k × k` block.
fn ascii_heatmap(m: &Tensor, k: usize) {
    let shades = [' ', '.', ':', '+', '*', '#'];
    let mut max = 1e-9f32;
    for i in 0..k {
        for j in 0..k {
            max = max.max(m.at(&[i, j]).abs());
        }
    }
    for i in 0..k {
        let row: String = (0..k)
            .map(|j| {
                let level =
                    ((m.at(&[i, j]).abs() / max) * (shades.len() - 1) as f32).round() as usize;
                shades[level.min(shades.len() - 1)]
            })
            .collect();
        println!("|{row}|");
    }
}

/// Entry point used by `main` — runs a forward pass sanity check before the
/// heavier figure work, so failures surface fast.
pub fn sanity_forward(scale: Scale) {
    let hyper = Hyper::at(scale);
    let ds = dataset_la(Scale::Small);
    let model = hyper.make_model("TCN", &ds, 1);
    let x = ds.windows.input_window(0).unsqueeze(0);
    let mut g = Graph::new();
    let mut rng = TensorRng::seed(1);
    let mut ctx = ForwardCtx::eval(&mut rng);
    let y = model.forward(&mut g, &x, &mut ctx);
    assert_eq!(g.value(y).shape()[1], 12);
    println!("sanity forward OK: {:?}", g.value(y).shape());

    // A two-epoch quick training pass so the smoke run exercises the full
    // telemetry surface (per-epoch events, kernel counters, stage timers,
    // span trees, latency/gradient histograms) and `--telemetry-out` JSONL
    // has epoch records for `scripts/bench_summary` to validate. D-DA-GTCN
    // carries both plugins, so the DAMGN graph diagnostics and DFGN memory
    // drift probes fire alongside the host-model spans. Training runs on the
    // two-shard data-parallel path so the smoke run also exercises the
    // `trainer.shard.*` fan-out/reduce telemetry.
    let mut model = hyper.make_model("D-DA-GTCN", &ds, 1);
    let mut quick_cfg = enhancenet::TrainConfig::quick(2, 8);
    quick_cfg.data_parallel = Some(2);
    let trainer = Trainer::new(quick_cfg);
    let report = trainer.train(model.as_mut(), &ds.windows);
    assert_eq!(report.epoch_telemetry.len(), 2);
    println!(
        "sanity train OK: {} epochs, {:.1} windows/s",
        report.epoch_telemetry.len(),
        report.epoch_telemetry[0].windows_per_sec
    );

    // An evaluation pass over the test split so the per-entity/per-horizon
    // error-attribution probe and the `infer.window_ns` histogram are
    // exercised end to end.
    let eval =
        trainer.evaluate(model.as_ref(), &ds.windows, ds.windows.split.test.clone(), &[3, 6, 12]);
    println!(
        "sanity eval OK: overall MAE {:.3}, predict {:.2} ms/window",
        eval.overall.mae, eval.pred_ms
    );
}
